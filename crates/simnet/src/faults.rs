//! Deterministic fault injection: seeded schedules of node crashes,
//! recoveries, transient slowdowns, and disk degradation.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultSpec`]s — either written
//! out explicitly, parsed from a CLI string ([`FaultPlan::parse_list`]), or
//! generated from a seed ([`FaultPlan::seeded_crashes`],
//! [`FaultPlan::seeded_slowdowns`]). [`FaultPlan::inject`] arms the plan on
//! a simulator: every fault becomes a timer on the engine's timer wheel,
//! and the returned [`FaultInjector`] is fed each event from the run loop
//! *before* the repair/foreground drivers. When one of its timers fires it
//! applies the fault atomically ([`Simulator::fail_node`],
//! [`Simulator::recover_node`], [`Simulator::scale_node_caps`]) and
//! reports a [`FaultEvent`] the loop can forward to subscribers (the
//! repair drivers' failure hooks).
//!
//! Everything is virtual-time and seeded, so a fault schedule derived from
//! an experiment's `RunSpec` replays byte-identically at any worker count.
//!
//! # Examples
//!
//! ```
//! use chameleon_simnet::{
//!     Event, FaultPlan, FaultSpec, FlowSpec, NodeCaps, SimConfig, Simulator, Traffic,
//! };
//!
//! let mut sim = Simulator::new(SimConfig::uniform(3, NodeCaps::symmetric(100.0, 50.0)));
//! let plan = FaultPlan::new(vec![FaultSpec::Crash { node: 1, at_secs: 1.0 }]);
//! let mut injector = plan.inject(&mut sim);
//! sim.start_flow(FlowSpec::network(0, 1, 1_000, Traffic::Repair));
//! let mut crashes = 0;
//! while let Some(ev) = sim.next_event() {
//!     if let Some(fault) = injector.on_event(&mut sim, &ev) {
//!         crashes += 1;
//!         assert_eq!(fault.node(), 1);
//!     }
//! }
//! assert_eq!(crashes, 1);
//! assert!(sim.is_node_failed(1));
//! ```

use std::collections::HashMap;

use crate::engine::{Event, Simulator};
use crate::flow::TimerId;
use crate::node::NodeId;

/// Dispatch key carried by every fault timer, so fault firings are
/// recognizable in event logs (drivers match timers by id, not key, and
/// ignore it).
pub const FAULT_TIMER_KEY: u64 = 0xFA17;

/// One scheduled fault.
///
/// Times are absolute simulation seconds; scale factors are relative to
/// the node's *configured* capacities (they do not compound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The node crashes at `at_secs`: every flow it carries is killed
    /// (surfacing as [`FlowOutcome::Aborted`](crate::FlowOutcome) events)
    /// and new flows through it abort on admission until it recovers.
    Crash {
        /// The crashing node.
        node: NodeId,
        /// Crash time, in seconds.
        at_secs: f64,
    },
    /// The node recovers at `at_secs` (flows killed by the crash stay
    /// dead; restarting work is the drivers' job).
    Recover {
        /// The recovering node.
        node: NodeId,
        /// Recovery time, in seconds.
        at_secs: f64,
    },
    /// Transient network slowdown: the node's uplink/downlink capacities
    /// are scaled by `factor` during `[at_secs, at_secs + duration_secs)`,
    /// then restored — the generalization of Exp#11's ad-hoc "hog" flows.
    Slowdown {
        /// The straggling node.
        node: NodeId,
        /// Slowdown onset, in seconds.
        at_secs: f64,
        /// Network capacity multiplier in `(0, ∞)`; `0.25` models a 4×
        /// slowdown.
        factor: f64,
        /// How long the slowdown lasts, in seconds.
        duration_secs: f64,
    },
    /// Disk degradation: the node's disk read/write capacities are scaled
    /// by `factor` for `duration_secs`, then restored.
    DiskDegrade {
        /// The degraded node.
        node: NodeId,
        /// Degradation onset, in seconds.
        at_secs: f64,
        /// Disk capacity multiplier in `(0, ∞)`.
        factor: f64,
        /// How long the degradation lasts, in seconds.
        duration_secs: f64,
    },
}

impl FaultSpec {
    /// The node the fault strikes.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultSpec::Crash { node, .. }
            | FaultSpec::Recover { node, .. }
            | FaultSpec::Slowdown { node, .. }
            | FaultSpec::DiskDegrade { node, .. } => node,
        }
    }

    /// When the fault strikes, in seconds.
    pub fn at_secs(&self) -> f64 {
        match *self {
            FaultSpec::Crash { at_secs, .. }
            | FaultSpec::Recover { at_secs, .. }
            | FaultSpec::Slowdown { at_secs, .. }
            | FaultSpec::DiskDegrade { at_secs, .. } => at_secs,
        }
    }

    fn validate(&self) {
        assert!(
            self.at_secs().is_finite() && self.at_secs() >= 0.0,
            "fault time must be finite and non-negative"
        );
        if let FaultSpec::Slowdown {
            factor,
            duration_secs,
            ..
        }
        | FaultSpec::DiskDegrade {
            factor,
            duration_secs,
            ..
        } = *self
        {
            assert!(
                factor.is_finite() && factor > 0.0,
                "scale factor must be positive and finite"
            );
            assert!(
                duration_secs.is_finite() && duration_secs > 0.0,
                "fault duration must be positive and finite"
            );
        }
    }

    /// Parses one fault from its CLI form:
    ///
    /// - `crash:NODE@T` — crash node `NODE` at `T` seconds,
    /// - `recover:NODE@T` — recover it at `T`,
    /// - `slow:NODE@T` `xF+D` — scale network capacity by `F` for `D`
    ///   seconds starting at `T` (e.g. `slow:5@2x0.25+10`),
    /// - `disk:NODE@T` `xF+D` — same for disk capacity.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input, including
    /// non-finite (`NaN`/`inf`) or negative times, factors, and durations
    /// — a bare `f64` parse accepts those, and letting them through here
    /// would panic later inside [`FaultPlan::new`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let bad =
            || format!("bad fault spec '{s}' (expected e.g. crash:3@1.5 or slow:5@2x0.25+10)");
        let (kind, rest) = s.split_once(':').ok_or_else(bad)?;
        let (node, timing) = rest.split_once('@').ok_or_else(bad)?;
        let node: NodeId = node.parse().map_err(|_| bad())?;
        let secs = |v: &str| {
            let x: f64 = v.parse().map_err(|_| bad())?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "bad fault spec '{s}': '{v}' must be a finite, non-negative number"
                ));
            }
            Ok(x)
        };
        match kind {
            "crash" => Ok(FaultSpec::Crash {
                node,
                at_secs: secs(timing)?,
            }),
            "recover" => Ok(FaultSpec::Recover {
                node,
                at_secs: secs(timing)?,
            }),
            "slow" | "disk" => {
                let (at, mods) = timing.split_once('x').ok_or_else(bad)?;
                let (factor, duration) = mods.split_once('+').ok_or_else(bad)?;
                let (at_secs, factor, duration_secs) = (secs(at)?, secs(factor)?, secs(duration)?);
                if !factor.is_finite()
                    || factor <= 0.0
                    || !duration_secs.is_finite()
                    || duration_secs <= 0.0
                {
                    return Err(bad());
                }
                Ok(if kind == "slow" {
                    FaultSpec::Slowdown {
                        node,
                        at_secs,
                        factor,
                        duration_secs,
                    }
                } else {
                    FaultSpec::DiskDegrade {
                        node,
                        at_secs,
                        factor,
                        duration_secs,
                    }
                })
            }
            _ => Err(bad()),
        }
    }
}

/// What a fired fault did, reported by [`FaultInjector::on_event`] so the
/// run loop can notify subscribers (e.g. repair drivers re-planning around
/// a crash).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A node crashed.
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A node recovered.
    Recover {
        /// The recovered node.
        node: NodeId,
    },
    /// A network slowdown began.
    SlowdownStart {
        /// The straggling node.
        node: NodeId,
        /// The applied network capacity factor.
        factor: f64,
    },
    /// A network slowdown ended.
    SlowdownEnd {
        /// The recovered node.
        node: NodeId,
    },
    /// Disk degradation began.
    DiskDegradeStart {
        /// The degraded node.
        node: NodeId,
        /// The applied disk capacity factor.
        factor: f64,
    },
    /// Disk degradation ended.
    DiskDegradeEnd {
        /// The recovered node.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The node the fault struck.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultEvent::Crash { node }
            | FaultEvent::Recover { node }
            | FaultEvent::SlowdownStart { node, .. }
            | FaultEvent::SlowdownEnd { node }
            | FaultEvent::DiskDegradeStart { node, .. }
            | FaultEvent::DiskDegradeEnd { node } => node,
        }
    }
}

/// A deterministic schedule of faults, ordered by fire time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

/// The splitmix64 step — the workspace's standard seed-mixing primitive
/// (same constants as the bench runner's `client_seed`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit draw to `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Builds a plan from explicit specs, sorted by (time, node) so
    /// injection order — and therefore every downstream event — is
    /// independent of the caller's list order.
    ///
    /// # Panics
    ///
    /// Panics if any spec has a non-finite/negative time, a non-positive
    /// scale factor, or a non-positive duration.
    pub fn new(mut specs: Vec<FaultSpec>) -> Self {
        for s in &specs {
            s.validate();
        }
        specs.sort_by(|a, b| {
            a.at_secs()
                .total_cmp(&b.at_secs())
                .then(a.node().cmp(&b.node()))
        });
        FaultPlan { specs }
    }

    /// The empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scheduled faults, in fire order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Time of the first scheduled crash, if any — the start of the
    /// data-loss window in fault experiments.
    pub fn first_crash_secs(&self) -> Option<f64> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Crash { at_secs, .. } => Some(*at_secs),
                _ => None,
            })
            .min_by(f64::total_cmp)
    }

    /// Generates `count` crashes of distinct nodes drawn from
    /// `candidates`, at seeded-uniform times in `[window.0, window.1)`;
    /// each crashed node recovers `recover_after` seconds later when that
    /// is `Some`. Fully determined by `(seed, candidates, count, window,
    /// recover_after)`.
    ///
    /// # Panics
    ///
    /// Panics if `count > candidates.len()` or the window is not an
    /// ordered pair of finite, non-negative times.
    pub fn seeded_crashes(
        seed: u64,
        candidates: &[NodeId],
        count: usize,
        window: (f64, f64),
        recover_after: Option<f64>,
    ) -> Self {
        let picks = Self::seeded_picks(seed, candidates, count, window);
        let mut specs = Vec::with_capacity(count * 2);
        for (node, at_secs) in picks {
            specs.push(FaultSpec::Crash { node, at_secs });
            if let Some(after) = recover_after {
                specs.push(FaultSpec::Recover {
                    node,
                    at_secs: at_secs + after,
                });
            }
        }
        FaultPlan::new(specs)
    }

    /// Generates `count` transient network slowdowns of distinct nodes
    /// drawn from `candidates`, at seeded-uniform times in the window,
    /// each scaling network capacity by `factor` for `duration_secs`.
    ///
    /// # Panics
    ///
    /// As for [`FaultPlan::seeded_crashes`], plus the factor/duration
    /// validity rules of [`FaultPlan::new`].
    pub fn seeded_slowdowns(
        seed: u64,
        candidates: &[NodeId],
        count: usize,
        window: (f64, f64),
        factor: f64,
        duration_secs: f64,
    ) -> Self {
        let picks = Self::seeded_picks(seed, candidates, count, window);
        FaultPlan::new(
            picks
                .into_iter()
                .map(|(node, at_secs)| FaultSpec::Slowdown {
                    node,
                    at_secs,
                    factor,
                    duration_secs,
                })
                .collect(),
        )
    }

    /// Draws `count` distinct nodes (seeded Fisher–Yates over a copy of
    /// `candidates`) and a seeded-uniform fire time in `window` for each.
    fn seeded_picks(
        seed: u64,
        candidates: &[NodeId],
        count: usize,
        window: (f64, f64),
    ) -> Vec<(NodeId, f64)> {
        assert!(
            count <= candidates.len(),
            "cannot draw {count} distinct nodes from {} candidates",
            candidates.len()
        );
        assert!(
            window.0.is_finite() && window.1.is_finite() && 0.0 <= window.0 && window.0 <= window.1,
            "bad fault window {window:?}"
        );
        let mut state = seed ^ 0xFA17_FA17_FA17_FA17;
        let mut pool: Vec<NodeId> = candidates.to_vec();
        let mut picks = Vec::with_capacity(count);
        for _ in 0..count {
            let i = (splitmix64(&mut state) % pool.len() as u64) as usize;
            let node = pool.swap_remove(i);
            let at = window.0 + unit(splitmix64(&mut state)) * (window.1 - window.0);
            picks.push((node, at));
        }
        picks
    }

    /// Generates a continuous crash stream: node lifetimes are i.i.d.
    /// exponential with mean `mttf_secs`, so crashes among the *currently
    /// up* nodes form a Poisson process of rate `up_count / mttf_secs`
    /// (superposition of per-node clocks). Each crash strikes a
    /// seeded-uniform victim among the up nodes; with `recover_after =
    /// Some(r)` the victim rejoins the pool `r` seconds later (repairing
    /// its data is the orchestrator's job — the generator only models
    /// node availability). Without recovery the pool drains and the
    /// stream stops once every candidate is down.
    ///
    /// Generation is event-driven over `[window.0, window.1)`: after every
    /// pool change the next interarrival is redrawn at the new aggregate
    /// rate, which is distribution-preserving because the exponential is
    /// memoryless. Fully determined by the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, `mttf_secs` is not positive and
    /// finite, or the window is not an ordered pair of finite,
    /// non-negative times.
    pub fn seeded_poisson(
        seed: u64,
        candidates: &[NodeId],
        mttf_secs: f64,
        window: (f64, f64),
        recover_after: Option<f64>,
    ) -> Self {
        assert!(
            !candidates.is_empty(),
            "poisson stream needs at least one candidate node"
        );
        assert!(
            mttf_secs.is_finite() && mttf_secs > 0.0,
            "mttf must be positive and finite"
        );
        assert!(
            window.0.is_finite() && window.1.is_finite() && 0.0 <= window.0 && window.0 <= window.1,
            "bad fault window {window:?}"
        );
        if let Some(after) = recover_after {
            assert!(
                after.is_finite() && after > 0.0,
                "recover_after must be positive and finite"
            );
        }
        let mut state = seed ^ 0xFA17_FA17_FA17_FA17;
        // Sorted up-pool: candidate order must not leak into the stream.
        let mut up: Vec<NodeId> = candidates.to_vec();
        up.sort_unstable();
        up.dedup();
        // Pending recoveries, ascending by (time, node).
        let mut pending: Vec<(f64, NodeId)> = Vec::new();
        let mut specs = Vec::new();
        let mut t = window.0;
        loop {
            if up.is_empty() {
                // Everything is down: jump to the next recovery, or stop.
                let Some(&(rt, _)) = pending.first() else {
                    break;
                };
                if rt >= window.1 {
                    break;
                }
                t = rt;
                let (_, node) = pending.remove(0);
                let pos = up.partition_point(|&n| n < node);
                up.insert(pos, node);
                continue;
            }
            let rate = up.len() as f64 / mttf_secs;
            let dt = -(1.0 - unit(splitmix64(&mut state))).ln() / rate;
            let t_next = t + dt;
            // A recovery before the drawn crash changes the aggregate
            // rate; advance to it and redraw (valid by memorylessness).
            if let Some(&(rt, node)) = pending.first() {
                if rt <= t_next {
                    t = rt;
                    pending.remove(0);
                    let pos = up.partition_point(|&n| n < node);
                    up.insert(pos, node);
                    continue;
                }
            }
            if t_next >= window.1 {
                break;
            }
            t = t_next;
            let i = (splitmix64(&mut state) % up.len() as u64) as usize;
            let node = up.remove(i);
            specs.push(FaultSpec::Crash { node, at_secs: t });
            if let Some(after) = recover_after {
                let rt = t + after;
                specs.push(FaultSpec::Recover { node, at_secs: rt });
                let pos = pending.partition_point(|&(pt, pn)| (pt, pn) < (rt, node));
                pending.insert(pos, (rt, node));
            }
        }
        FaultPlan::new(specs)
    }

    /// Merges two plans into one schedule (re-sorted by fire time) — used
    /// to interleave a generated stream with hand-written specs.
    pub fn merge(&self, other: &FaultPlan) -> Self {
        let mut specs = self.specs.clone();
        specs.extend(other.specs.iter().copied());
        FaultPlan::new(specs)
    }

    /// Parses a comma-separated list of [`FaultSpec::parse`] forms, e.g.
    /// `crash:3@1.5,slow:5@2x0.25+10,recover:3@20`.
    ///
    /// # Errors
    ///
    /// Returns the first malformed entry's error message.
    pub fn parse_list(s: &str) -> Result<Self, String> {
        let specs = s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| FaultSpec::parse(p.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan::new(specs))
    }

    /// Arms the plan on a simulator: every fault becomes a timer on the
    /// engine's wheel (scale faults get a second timer restoring the
    /// capacity). Feed the returned injector every event from the run
    /// loop, before the drivers.
    ///
    /// # Panics
    ///
    /// Panics if a spec names a node out of range (via timer scheduling
    /// being fine, the panic surfaces when the fault fires — prefer
    /// validating node ids against the cluster before injecting).
    pub fn inject(&self, sim: &mut Simulator) -> FaultInjector {
        let mut by_timer = HashMap::new();
        // Each scale fault is a *window*: its start and end timers carry the
        // same window id so the injector can retire exactly that window when
        // the end fires, instead of blindly resetting the node to factor 1.0
        // (which clobbered overlapping same-kind windows).
        let mut window = 0u64;
        for spec in &self.specs {
            match *spec {
                FaultSpec::Crash { node, at_secs } => {
                    let t = sim.schedule_in(at_secs, FAULT_TIMER_KEY);
                    by_timer.insert(t, FaultAction::Crash(node));
                }
                FaultSpec::Recover { node, at_secs } => {
                    let t = sim.schedule_in(at_secs, FAULT_TIMER_KEY);
                    by_timer.insert(t, FaultAction::Recover(node));
                }
                FaultSpec::Slowdown {
                    node,
                    at_secs,
                    factor,
                    duration_secs,
                } => {
                    window += 1;
                    let t = sim.schedule_in(at_secs, FAULT_TIMER_KEY);
                    by_timer.insert(
                        t,
                        FaultAction::ScaleStart {
                            kind: ScaleKind::Net,
                            node,
                            factor,
                            window,
                        },
                    );
                    let t = sim.schedule_in(at_secs + duration_secs, FAULT_TIMER_KEY);
                    by_timer.insert(
                        t,
                        FaultAction::ScaleEnd {
                            kind: ScaleKind::Net,
                            node,
                            window,
                        },
                    );
                }
                FaultSpec::DiskDegrade {
                    node,
                    at_secs,
                    factor,
                    duration_secs,
                } => {
                    window += 1;
                    let t = sim.schedule_in(at_secs, FAULT_TIMER_KEY);
                    by_timer.insert(
                        t,
                        FaultAction::ScaleStart {
                            kind: ScaleKind::Disk,
                            node,
                            factor,
                            window,
                        },
                    );
                    let t = sim.schedule_in(at_secs + duration_secs, FAULT_TIMER_KEY);
                    by_timer.insert(
                        t,
                        FaultAction::ScaleEnd {
                            kind: ScaleKind::Disk,
                            node,
                            window,
                        },
                    );
                }
            }
        }
        FaultInjector {
            by_timer,
            net_windows: HashMap::new(),
            disk_windows: HashMap::new(),
            applied: Vec::new(),
        }
    }
}

/// Which capacity family a scale window throttles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScaleKind {
    Net,
    Disk,
}

/// What to do when a fault timer fires.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash(NodeId),
    Recover(NodeId),
    ScaleStart {
        kind: ScaleKind,
        node: NodeId,
        factor: f64,
        window: u64,
    },
    ScaleEnd {
        kind: ScaleKind,
        node: NodeId,
        window: u64,
    },
}

/// An armed [`FaultPlan`]: owns the timer → fault mapping and the active
/// scale windows per node. Network and disk faults on one node compose
/// (they throttle different capacity families); overlapping *same-kind*
/// windows do not compound — the most recently started window's factor
/// wins, and when it ends the node falls back to the next still-active
/// window (or the configured capacities once none remain).
#[derive(Debug)]
pub struct FaultInjector {
    by_timer: HashMap<TimerId, FaultAction>,
    /// Active network scale windows per node, in start order (the last
    /// entry's factor is in force; empty/absent = 1.0).
    net_windows: HashMap<NodeId, Vec<(u64, f64)>>,
    /// Active disk scale windows per node, same layout.
    disk_windows: HashMap<NodeId, Vec<(u64, f64)>>,
    /// Every fault applied so far, in fire order.
    applied: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Handles one simulation event. If it is one of this injector's fault
    /// timers, the fault is applied to the simulator and reported;
    /// otherwise `None` (the event belongs to someone else). Call this
    /// before handing the event to the drivers, and forward the returned
    /// [`FaultEvent`] to any subscriber that re-plans around faults.
    pub fn on_event(&mut self, sim: &mut Simulator, event: &Event) -> Option<FaultEvent> {
        let Event::Timer { id, .. } = event else {
            return None;
        };
        let action = self.by_timer.remove(id)?;
        let fault = match action {
            FaultAction::Crash(node) => {
                sim.fail_node(node);
                FaultEvent::Crash { node }
            }
            FaultAction::Recover(node) => {
                sim.recover_node(node);
                // A node recovering inside an active scale window must come
                // back at the *scaled* capacities, not the configured ones —
                // re-assert the factors in force rather than trusting
                // whatever the capacities drifted to while the node was down.
                if self.net_windows.contains_key(&node) || self.disk_windows.contains_key(&node) {
                    self.rescale(sim, node);
                }
                FaultEvent::Recover { node }
            }
            FaultAction::ScaleStart {
                kind,
                node,
                factor,
                window,
            } => {
                self.windows_mut(kind)
                    .entry(node)
                    .or_default()
                    .push((window, factor));
                self.rescale(sim, node);
                match kind {
                    ScaleKind::Net => FaultEvent::SlowdownStart { node, factor },
                    ScaleKind::Disk => FaultEvent::DiskDegradeStart { node, factor },
                }
            }
            FaultAction::ScaleEnd { kind, node, window } => {
                let windows = self.windows_mut(kind);
                let restored = if let Some(stack) = windows.get_mut(&node) {
                    stack.retain(|&(w, _)| w != window);
                    let rest = stack.last().map(|&(_, f)| f);
                    if stack.is_empty() {
                        windows.remove(&node);
                    }
                    rest
                } else {
                    None
                };
                self.rescale(sim, node);
                // If an earlier same-kind window is still open, the node is
                // not back to full speed — report the factor now in force so
                // straggler-aware drivers keep the right picture.
                match (kind, restored) {
                    (ScaleKind::Net, None) => FaultEvent::SlowdownEnd { node },
                    (ScaleKind::Net, Some(factor)) => FaultEvent::SlowdownStart { node, factor },
                    (ScaleKind::Disk, None) => FaultEvent::DiskDegradeEnd { node },
                    (ScaleKind::Disk, Some(factor)) => {
                        FaultEvent::DiskDegradeStart { node, factor }
                    }
                }
            }
        };
        self.applied.push(fault);
        Some(fault)
    }

    fn windows_mut(&mut self, kind: ScaleKind) -> &mut HashMap<NodeId, Vec<(u64, f64)>> {
        match kind {
            ScaleKind::Net => &mut self.net_windows,
            ScaleKind::Disk => &mut self.disk_windows,
        }
    }

    fn rescale(&self, sim: &mut Simulator, node: NodeId) {
        let factor = |m: &HashMap<NodeId, Vec<(u64, f64)>>| {
            m.get(&node).and_then(|s| s.last()).map_or(1.0, |&(_, f)| f)
        };
        sim.scale_node_caps(node, factor(&self.net_windows), factor(&self.disk_windows));
    }

    /// Faults applied so far, in fire order.
    pub fn applied(&self) -> &[FaultEvent] {
        &self.applied
    }

    /// Number of armed faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.by_timer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::flow::{FlowOutcome, FlowSpec};
    use crate::node::{NodeCaps, ResourceKind, Traffic};

    fn sim(nodes: usize) -> Simulator {
        Simulator::new(SimConfig::uniform(nodes, NodeCaps::symmetric(100.0, 50.0)))
    }

    /// Drives the sim to completion, returning (fault events, abort count).
    fn drain(sim: &mut Simulator, injector: &mut FaultInjector) -> (Vec<FaultEvent>, usize) {
        let mut aborts = 0;
        while let Some(ev) = sim.next_event() {
            injector.on_event(sim, &ev);
            if matches!(
                ev,
                Event::FlowCompleted {
                    outcome: FlowOutcome::Aborted,
                    ..
                }
            ) {
                aborts += 1;
            }
        }
        (injector.applied().to_vec(), aborts)
    }

    #[test]
    fn crash_kills_flows_and_recover_restores_admission() {
        let mut s = sim(3);
        let plan = FaultPlan::new(vec![
            FaultSpec::Crash {
                node: 1,
                at_secs: 1.0,
            },
            FaultSpec::Recover {
                node: 1,
                at_secs: 2.0,
            },
        ]);
        let mut inj = plan.inject(&mut s);
        s.start_flow(FlowSpec::network(0, 1, 100_000, Traffic::Repair));
        let (faults, aborts) = drain(&mut s, &mut inj);
        assert_eq!(
            faults,
            vec![
                FaultEvent::Crash { node: 1 },
                FaultEvent::Recover { node: 1 }
            ]
        );
        assert_eq!(aborts, 1);
        assert!(!s.is_node_failed(1));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn slowdown_scales_and_restores_network_capacity() {
        let mut s = sim(2);
        let plan = FaultPlan::new(vec![FaultSpec::Slowdown {
            node: 0,
            at_secs: 1.0,
            factor: 0.25,
            duration_secs: 2.0,
        }]);
        let mut inj = plan.inject(&mut s);
        let f = s.start_flow(FlowSpec::network(0, 1, 1_000, Traffic::Repair));
        // t=1: slowdown starts. Flow moved 100 bytes at 100 B/s.
        let ev = s.next_event().unwrap();
        assert_eq!(
            inj.on_event(&mut s, &ev),
            Some(FaultEvent::SlowdownStart {
                node: 0,
                factor: 0.25
            })
        );
        s.refresh();
        assert_eq!(s.flow_rate(f), Some(25.0));
        // t=3: slowdown ends (flow at 900 - 50 = 850 remaining).
        let ev = s.next_event().unwrap();
        assert_eq!(
            inj.on_event(&mut s, &ev),
            Some(FaultEvent::SlowdownEnd { node: 0 })
        );
        s.refresh();
        assert_eq!(s.flow_rate(f), Some(100.0));
        assert_eq!(s.capacity(0, ResourceKind::DiskRead), 50.0);
        // Completion at t = 3 + 850/100 = 11.5.
        let ev = s.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted {
                outcome: FlowOutcome::Delivered,
                ..
            }
        ));
        assert!((s.now().as_secs() - 11.5).abs() < 1e-9);
    }

    #[test]
    fn overlapping_net_and_disk_faults_compose() {
        let mut s = sim(2);
        let plan = FaultPlan::new(vec![
            FaultSpec::Slowdown {
                node: 0,
                at_secs: 1.0,
                factor: 0.5,
                duration_secs: 10.0,
            },
            FaultSpec::DiskDegrade {
                node: 0,
                at_secs: 2.0,
                factor: 0.1,
                duration_secs: 1.0,
            },
        ]);
        let mut inj = plan.inject(&mut s);
        // Fire: slowdown start (t=1), degrade start (t=2), degrade end
        // (t=3), slowdown end (t=11).
        for _ in 0..2 {
            let ev = s.next_event().unwrap();
            inj.on_event(&mut s, &ev);
        }
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 50.0);
        assert_eq!(s.capacity(0, ResourceKind::DiskRead), 5.0);
        let ev = s.next_event().unwrap();
        assert_eq!(
            inj.on_event(&mut s, &ev),
            Some(FaultEvent::DiskDegradeEnd { node: 0 })
        );
        // Disk restored; the network slowdown is still in force.
        assert_eq!(s.capacity(0, ResourceKind::DiskRead), 50.0);
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 50.0);
        let ev = s.next_event().unwrap();
        assert_eq!(
            inj.on_event(&mut s, &ev),
            Some(FaultEvent::SlowdownEnd { node: 0 })
        );
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 100.0);
    }

    #[test]
    fn overlapping_same_kind_slowdowns_restore_the_outer_window() {
        let mut s = sim(2);
        // Window A covers [1, 11); window B nests inside it at [3, 5) with
        // a harsher factor. When B ends, the node must fall back to A's
        // factor — not to the configured capacities (the old end-timer
        // reset to 1.0 silently cancelled A six seconds early).
        let plan = FaultPlan::new(vec![
            FaultSpec::Slowdown {
                node: 0,
                at_secs: 1.0,
                factor: 0.5,
                duration_secs: 10.0,
            },
            FaultSpec::Slowdown {
                node: 0,
                at_secs: 3.0,
                factor: 0.25,
                duration_secs: 2.0,
            },
        ]);
        let mut inj = plan.inject(&mut s);
        let fire = |s: &mut Simulator, inj: &mut FaultInjector| {
            let ev = s.next_event().unwrap();
            inj.on_event(s, &ev).unwrap()
        };
        assert_eq!(
            fire(&mut s, &mut inj),
            FaultEvent::SlowdownStart {
                node: 0,
                factor: 0.5
            }
        );
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 50.0);
        assert_eq!(
            fire(&mut s, &mut inj),
            FaultEvent::SlowdownStart {
                node: 0,
                factor: 0.25
            }
        );
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 25.0);
        // t=5: the inner window ends; the outer factor resumes and the
        // reported event carries the factor now in force.
        assert_eq!(
            fire(&mut s, &mut inj),
            FaultEvent::SlowdownStart {
                node: 0,
                factor: 0.5
            }
        );
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 50.0);
        assert_eq!(s.capacity(0, ResourceKind::Downlink), 50.0);
        // t=11: the outer window ends; only now is the node full speed.
        assert_eq!(fire(&mut s, &mut inj), FaultEvent::SlowdownEnd { node: 0 });
        assert_eq!(s.capacity(0, ResourceKind::Uplink), 100.0);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn recover_inside_scale_window_restores_scaled_caps() {
        let mut s = sim(3);
        // Crash-then-recover nested inside an active slowdown window: the
        // recovered node must come back at the scaled capacities, and only
        // the window's own end restores the configured ones.
        let plan = FaultPlan::new(vec![
            FaultSpec::Slowdown {
                node: 1,
                at_secs: 1.0,
                factor: 0.5,
                duration_secs: 9.0,
            },
            FaultSpec::Crash {
                node: 1,
                at_secs: 2.0,
            },
            FaultSpec::Recover {
                node: 1,
                at_secs: 4.0,
            },
        ]);
        let mut inj = plan.inject(&mut s);
        let fire = |s: &mut Simulator, inj: &mut FaultInjector| {
            let ev = s.next_event().unwrap();
            inj.on_event(s, &ev).unwrap()
        };
        assert_eq!(
            fire(&mut s, &mut inj),
            FaultEvent::SlowdownStart {
                node: 1,
                factor: 0.5
            }
        );
        assert_eq!(fire(&mut s, &mut inj), FaultEvent::Crash { node: 1 });
        assert_eq!(fire(&mut s, &mut inj), FaultEvent::Recover { node: 1 });
        assert!(!s.is_node_failed(1));
        assert_eq!(s.capacity(1, ResourceKind::Uplink), 50.0);
        assert_eq!(s.capacity(1, ResourceKind::Downlink), 50.0);
        // A fresh flow through the recovered node runs at the scaled rate.
        let f = s.start_flow(FlowSpec::network(0, 1, 1_000, Traffic::Repair));
        s.refresh();
        assert_eq!(s.flow_rate(f), Some(50.0));
        // t=10: the slowdown window ends and full speed returns.
        loop {
            let ev = s.next_event().unwrap();
            if let Some(fault) = inj.on_event(&mut s, &ev) {
                assert_eq!(fault, FaultEvent::SlowdownEnd { node: 1 });
                break;
            }
        }
        assert_eq!(s.capacity(1, ResourceKind::Uplink), 100.0);
    }

    #[test]
    fn parse_rejects_nonfinite_and_negative_numbers() {
        for bad in [
            "crash:3@-1",
            "crash:3@NaN",
            "crash:3@inf",
            "recover:2@-0.5",
            "slow:1@-2x0.5+5",
            "slow:1@1xNaN+5",
            "slow:1@1x0.5+inf",
            "disk:1@1x0.5+-3",
            "disk:1@-1x0.5+3",
        ] {
            let err = FaultSpec::parse(bad).unwrap_err();
            assert!(
                err.contains("bad fault spec"),
                "'{bad}' must fail with a clear message, got: {err}"
            );
        }
        // The same strings must not panic (or pass) through the list form.
        assert!(FaultPlan::parse_list("crash:0@1,slow:1@NaNx0.5+5").is_err());
        // Zero times stay legal; zero factors/durations stay rejected.
        assert!(FaultSpec::parse("crash:3@0").is_ok());
        assert!(FaultSpec::parse("slow:1@1x0+5").is_err());
        assert!(FaultSpec::parse("slow:1@1x0.5+0").is_err());
    }

    #[test]
    fn seeded_crashes_are_deterministic_and_distinct() {
        let candidates: Vec<NodeId> = (0..10).collect();
        let a = FaultPlan::seeded_crashes(42, &candidates, 4, (1.0, 9.0), Some(5.0));
        let b = FaultPlan::seeded_crashes(42, &candidates, 4, (1.0, 9.0), Some(5.0));
        assert_eq!(a, b);
        assert_eq!(a.specs().len(), 8); // 4 crashes + 4 recoveries
        let crashed: Vec<NodeId> = a
            .specs()
            .iter()
            .filter(|s| matches!(s, FaultSpec::Crash { .. }))
            .map(|s| s.node())
            .collect();
        let mut uniq = crashed.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "crashed nodes must be distinct: {crashed:?}");
        for s in a.specs() {
            if let FaultSpec::Crash { at_secs, .. } = s {
                assert!((1.0..9.0).contains(at_secs));
            }
        }
        // A different seed produces a different plan.
        let c = FaultPlan::seeded_crashes(43, &candidates, 4, (1.0, 9.0), Some(5.0));
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_stream_is_deterministic_and_respects_the_pool() {
        let candidates: Vec<NodeId> = (0..8).collect();
        let a = FaultPlan::seeded_poisson(0xD00D, &candidates, 50.0, (0.0, 200.0), Some(20.0));
        let b = FaultPlan::seeded_poisson(0xD00D, &candidates, 50.0, (0.0, 200.0), Some(20.0));
        assert_eq!(a, b, "same arguments must generate the same stream");
        let c = FaultPlan::seeded_poisson(0xBEEF, &candidates, 50.0, (0.0, 200.0), Some(20.0));
        assert_ne!(a, c, "a different seed must generate a different stream");
        // Candidate order must not change the stream.
        let mut reversed = candidates.clone();
        reversed.reverse();
        let d = FaultPlan::seeded_poisson(0xD00D, &reversed, 50.0, (0.0, 200.0), Some(20.0));
        assert_eq!(a, d);
        // Every crash strikes an *up* candidate inside the window, and no
        // node crashes again before its scheduled recovery.
        let mut down: Vec<NodeId> = Vec::new();
        let mut crashes = 0;
        for s in a.specs() {
            match *s {
                FaultSpec::Crash { node, at_secs } => {
                    assert!((0.0..200.0).contains(&at_secs));
                    assert!(candidates.contains(&node));
                    assert!(!down.contains(&node), "node {node} crashed while down");
                    down.push(node);
                    crashes += 1;
                }
                FaultSpec::Recover { node, .. } => {
                    down.retain(|&n| n != node);
                }
                _ => panic!("unexpected spec {s:?}"),
            }
        }
        assert!(
            crashes > 4,
            "expected a dense stream, got {crashes} crashes"
        );
    }

    #[test]
    fn poisson_mean_interarrival_matches_the_configured_mttf() {
        // 10 nodes, θ = 100 s, quick recovery: the pool is almost always
        // full, so the aggregate rate is ≈ 10/100 = 0.1 crashes/s and a
        // 10 000 s window should see ~1 000 crashes. The bound is wide
        // enough (±4 σ ≈ ±127 plus the small downtime bias) to be
        // deterministic in practice for any reasonable generator.
        let candidates: Vec<NodeId> = (0..10).collect();
        let plan =
            FaultPlan::seeded_poisson(0x90155, &candidates, 100.0, (0.0, 10_000.0), Some(1.0));
        let crash_times: Vec<f64> = plan
            .specs()
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::Crash { at_secs, .. } => Some(at_secs),
                _ => None,
            })
            .collect();
        let n = crash_times.len();
        assert!((850..=1150).contains(&n), "expected ~1000 crashes, got {n}");
        let mean_gap = 10_000.0 / n as f64;
        assert!(
            (8.5..=11.5).contains(&mean_gap),
            "mean interarrival {mean_gap:.2}s, expected ≈10s"
        );
    }

    #[test]
    fn poisson_without_recovery_drains_the_pool_and_stops() {
        let candidates: Vec<NodeId> = vec![2, 5, 7];
        // Tiny MTTF relative to the window: every node crashes, once.
        let plan = FaultPlan::seeded_poisson(1, &candidates, 0.5, (0.0, 1_000.0), None);
        let crashed: Vec<NodeId> = plan.specs().iter().map(|s| s.node()).collect();
        assert_eq!(plan.specs().len(), 3);
        let mut uniq = crashed.clone();
        uniq.sort_unstable();
        assert_eq!(uniq, candidates, "each candidate crashes exactly once");
    }

    #[test]
    fn poisson_merges_with_handwritten_schedules_in_fire_order() {
        let candidates: Vec<NodeId> = (0..6).collect();
        let stream = FaultPlan::seeded_poisson(9, &candidates, 20.0, (5.0, 60.0), Some(10.0));
        let hand = FaultPlan::parse_list("slow:1@2x0.25+10,crash:4@0.5").unwrap();
        let merged = stream.merge(&hand);
        assert_eq!(
            merged.specs().len(),
            stream.specs().len() + hand.specs().len()
        );
        // Re-sorted globally: the handwritten t=0.5 crash leads, and times
        // never decrease.
        assert_eq!(
            merged.specs()[0],
            FaultSpec::Crash {
                node: 4,
                at_secs: 0.5
            }
        );
        for pair in merged.specs().windows(2) {
            assert!(pair[0].at_secs() <= pair[1].at_secs());
        }
        assert!(merged
            .specs()
            .iter()
            .any(|s| matches!(s, FaultSpec::Slowdown { node: 1, .. })));
        assert_eq!(merged.first_crash_secs(), Some(0.5));
    }

    #[test]
    fn parse_list_round_trips_all_kinds() {
        let plan =
            FaultPlan::parse_list("crash:3@1.5, slow:5@2x0.25+10,disk:7@1x0.5+5,recover:3@20")
                .unwrap();
        assert_eq!(
            plan.specs(),
            &[
                FaultSpec::DiskDegrade {
                    node: 7,
                    at_secs: 1.0,
                    factor: 0.5,
                    duration_secs: 5.0
                },
                FaultSpec::Crash {
                    node: 3,
                    at_secs: 1.5
                },
                FaultSpec::Slowdown {
                    node: 5,
                    at_secs: 2.0,
                    factor: 0.25,
                    duration_secs: 10.0
                },
                FaultSpec::Recover {
                    node: 3,
                    at_secs: 20.0
                },
            ]
        );
        assert_eq!(plan.first_crash_secs(), Some(1.5));
        assert!(FaultPlan::parse_list("crash:x@1").is_err());
        assert!(FaultPlan::parse_list("melt:1@1").is_err());
        assert!(FaultPlan::parse_list("slow:1@1").is_err());
        assert!(FaultPlan::parse_list("").unwrap().is_empty());
    }

    #[test]
    fn injector_ignores_foreign_events() {
        let mut s = sim(2);
        let plan = FaultPlan::new(vec![FaultSpec::Crash {
            node: 1,
            at_secs: 5.0,
        }]);
        let mut inj = plan.inject(&mut s);
        s.schedule_in(1.0, 7);
        let ev = s.next_event().unwrap(); // the foreign timer
        assert_eq!(inj.on_event(&mut s, &ev), None);
        assert_eq!(inj.pending(), 1);
    }
}
