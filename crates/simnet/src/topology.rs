//! Hierarchical rack/spine fabric topologies.
//!
//! A [`Topology`] groups nodes into racks joined by per-rack ToR (top of
//! rack) up/down links and an optional shared spine whose capacity may be
//! *oversubscribed* relative to the sum of ToR uplinks — the warehouse
//! fabric shape whose aggregation layer carries >85% of repair traffic in
//! the Facebook analysis the paper builds on. The engine compiles the
//! topology into **shared link resources** appended after the per-node
//! cells in the max–min solver's constraint rows: a cross-rack flow is
//! additionally constrained by its source rack's ToR uplink, the spine
//! (when present), and its destination rack's ToR downlink. Same-rack
//! flows take no link cells at all, so a topology whose links never bind
//! (one rack, or non-blocking everywhere) is byte-identical to the
//! rackless engine.
//!
//! Link resource ids, in the engine's capacity vector after the
//! `nodes × 4` node cells:
//!
//! - rack `r` ToR uplink: `2 r`
//! - rack `r` ToR downlink: `2 r + 1`
//! - spine (if any): `2 × racks`

/// The rack/spine fabric joining the simulator's nodes.
///
/// # Examples
///
/// ```
/// use chameleon_simnet::Topology;
/// // 6 nodes round-robined over 3 racks, 100 B/s ToR links, 1:4
/// // oversubscribed 75 B/s spine.
/// let t = Topology::round_robin(6, 3, 100.0, 100.0, Some(75.0));
/// assert_eq!(t.rack_count(), 3);
/// assert_eq!(t.rack_of(4), 1);
/// assert!(t.same_rack(0, 3));
/// assert_eq!(t.link_count(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Rack of each node.
    rack_of: Vec<u32>,
    racks: usize,
    /// Per-rack ToR uplink capacity (rack → spine), bytes/s.
    tor_up: Vec<f64>,
    /// Per-rack ToR downlink capacity (spine → rack), bytes/s.
    tor_down: Vec<f64>,
    /// Aggregate spine capacity, bytes/s; `None` models a non-blocking
    /// core (cross-rack flows are then constrained by ToR links only).
    spine: Option<f64>,
}

impl Topology {
    /// Builds a topology from an explicit node → rack map and per-rack
    /// ToR capacities.
    ///
    /// # Panics
    ///
    /// Panics if `rack_of` is empty, references a rack out of range, any
    /// capacity is negative or non-finite, or the ToR capacity vectors
    /// disagree with the rack count.
    pub fn new(
        rack_of: Vec<u32>,
        tor_up: Vec<f64>,
        tor_down: Vec<f64>,
        spine: Option<f64>,
    ) -> Self {
        assert!(!rack_of.is_empty(), "topology needs at least one node");
        let racks = tor_up.len();
        assert_eq!(tor_down.len(), racks, "one ToR down capacity per rack");
        assert!(racks > 0, "topology needs at least one rack");
        for &r in &rack_of {
            assert!((r as usize) < racks, "node assigned to rack {r} of {racks}");
        }
        for c in tor_up.iter().chain(&tor_down).chain(spine.iter()) {
            assert!(
                c.is_finite() && *c >= 0.0,
                "link capacities must be finite and non-negative"
            );
        }
        Topology {
            rack_of,
            racks,
            tor_up,
            tor_down,
            spine,
        }
    }

    /// `nodes` nodes assigned round-robin (`node % racks`) over `racks`
    /// racks, with uniform ToR capacities and an optional spine.
    ///
    /// # Panics
    ///
    /// As for [`Topology::new`].
    pub fn round_robin(
        nodes: usize,
        racks: usize,
        tor_up: f64,
        tor_down: f64,
        spine: Option<f64>,
    ) -> Self {
        assert!(racks > 0, "topology needs at least one rack");
        Topology::new(
            (0..nodes).map(|n| (n % racks) as u32).collect(),
            vec![tor_up; racks],
            vec![tor_down; racks],
            spine,
        )
    }

    /// Number of nodes the topology describes.
    pub fn node_count(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.racks
    }

    /// The rack a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rack_of(&self, node: usize) -> usize {
        self.rack_of[node] as usize
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of[a] == self.rack_of[b]
    }

    /// Number of shared link resources the topology compiles to:
    /// two per rack plus the spine when present.
    pub fn link_count(&self) -> usize {
        2 * self.racks + usize::from(self.spine.is_some())
    }

    /// Link index of rack `r`'s ToR uplink.
    pub fn tor_up_link(&self, rack: usize) -> usize {
        debug_assert!(rack < self.racks);
        2 * rack
    }

    /// Link index of rack `r`'s ToR downlink.
    pub fn tor_down_link(&self, rack: usize) -> usize {
        debug_assert!(rack < self.racks);
        2 * rack + 1
    }

    /// Link index of the spine, if the topology has one.
    pub fn spine_link(&self) -> Option<usize> {
        self.spine.map(|_| 2 * self.racks)
    }

    /// Capacity of one link resource, in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_capacity(&self, link: usize) -> f64 {
        if link < 2 * self.racks {
            if link.is_multiple_of(2) {
                self.tor_up[link / 2]
            } else {
                self.tor_down[link / 2]
            }
        } else {
            assert_eq!(link, 2 * self.racks, "link {link} out of range");
            self.spine.expect("spine link exists")
        }
    }

    /// Human-readable name of one link resource (`tor_up[r]`,
    /// `tor_down[r]`, or `spine`).
    pub fn link_label(&self, link: usize) -> String {
        if link < 2 * self.racks {
            if link.is_multiple_of(2) {
                format!("tor_up[{}]", link / 2)
            } else {
                format!("tor_down[{}]", link / 2)
            }
        } else {
            "spine".to_string()
        }
    }

    /// The link resources a `src → dst` transfer crosses: empty for
    /// same-rack pairs, `[tor_up(src), tor_down(dst)]` plus the spine (in
    /// that order, spine last) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn path_links(&self, src: usize, dst: usize) -> impl Iterator<Item = usize> {
        let (rs, rd) = (self.rack_of(src), self.rack_of(dst));
        let cross = rs != rd;
        let spine = self.spine_link();
        [
            cross.then_some(self.tor_up_link(rs)),
            cross.then_some(self.tor_down_link(rd)),
            if cross { spine } else { None },
        ]
        .into_iter()
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_and_link_ids() {
        let t = Topology::round_robin(10, 3, 200.0, 300.0, Some(150.0));
        assert_eq!(t.node_count(), 10);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(5), 2);
        assert!(t.same_rack(1, 4));
        assert!(!t.same_rack(1, 5));
        assert_eq!(t.link_count(), 7);
        assert_eq!(t.tor_up_link(2), 4);
        assert_eq!(t.tor_down_link(2), 5);
        assert_eq!(t.spine_link(), Some(6));
        assert_eq!(t.link_capacity(4), 200.0);
        assert_eq!(t.link_capacity(5), 300.0);
        assert_eq!(t.link_capacity(6), 150.0);
        assert_eq!(t.link_label(0), "tor_up[0]");
        assert_eq!(t.link_label(5), "tor_down[2]");
        assert_eq!(t.link_label(6), "spine");
    }

    #[test]
    fn spineless_topology_has_no_spine_link() {
        let t = Topology::round_robin(4, 2, 100.0, 100.0, None);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.spine_link(), None);
        let links: Vec<usize> = t.path_links(0, 1).collect();
        assert_eq!(links, vec![0, 3], "tor_up[0] then tor_down[1]");
    }

    #[test]
    fn same_rack_paths_are_linkless() {
        let t = Topology::round_robin(6, 3, 100.0, 100.0, Some(50.0));
        assert_eq!(t.path_links(0, 3).count(), 0);
        let links: Vec<usize> = t.path_links(0, 1).collect();
        assert_eq!(links, vec![0, 3, 6], "tor_up, tor_down, spine");
    }

    #[test]
    #[should_panic(expected = "assigned to rack")]
    fn out_of_range_rack_rejected() {
        let _ = Topology::new(vec![0, 3], vec![1.0, 1.0], vec![1.0, 1.0], None);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_capacity_rejected() {
        let _ = Topology::new(vec![0], vec![f64::NAN], vec![1.0], None);
    }
}
