//! Windowed bandwidth accounting per node, resource, and traffic class.

use crate::node::{NodeCaps, ResourceKind, Traffic};

/// Bytes observed for one (window, node, resource, class) combination.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageSample {
    /// Bytes transferred in the window.
    pub bytes: f64,
    /// Window length in seconds (the final window may be partial).
    pub seconds: f64,
}

impl UsageSample {
    /// Average rate over the window, in bytes/s (0 for an empty window).
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds
        } else {
            0.0
        }
    }
}

const KINDS: usize = 4;
const TAGS: usize = 3;

/// Records how many bytes each traffic class moved through each node
/// resource, in consecutive fixed-length time windows (15 s in the paper's
/// §II-D analysis).
///
/// The monitor is filled by the [`Simulator`](crate::Simulator) as flows
/// progress; experiments read it to compute fluctuation (Fig. 5) and
/// most/least-loaded link statistics (Fig. 6).
#[derive(Debug, Clone)]
pub struct Monitor {
    window_secs: f64,
    nodes: usize,
    /// `windows[w][idx(node, kind, tag)]` = bytes.
    windows: Vec<Vec<f64>>,
    /// Total simulated time covered so far.
    horizon: f64,
    /// `aborted[node * TAGS + tag]` = bytes of in-flight transfer killed by
    /// that node's failure (fault injection); the wasted-work ledger.
    aborted: Vec<f64>,
    /// Number of flows killed by node failures.
    abort_events: usize,
    /// Time of the most recent abort, in seconds (0 if none).
    last_abort_secs: f64,
}

impl Monitor {
    /// Creates a monitor for `nodes` nodes with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub(crate) fn new(nodes: usize, window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window length must be positive");
        Monitor {
            window_secs,
            nodes,
            windows: Vec::new(),
            horizon: 0.0,
            aborted: vec![0.0; nodes * TAGS],
            abort_events: 0,
            last_abort_secs: 0.0,
        }
    }

    fn idx(&self, node: usize, kind: ResourceKind, tag: Traffic) -> usize {
        debug_assert!(node < self.nodes);
        (node * KINDS + kind.index()) * TAGS + tag.index()
    }

    /// Accounts a constant-rate transfer segment `[start, end)`.
    pub(crate) fn record(
        &mut self,
        start: f64,
        end: f64,
        rate: f64,
        node: usize,
        kind: ResourceKind,
        tag: Traffic,
    ) {
        debug_assert!(end >= start);
        self.horizon = self.horizon.max(end);
        if rate <= 0.0 || end <= start {
            return;
        }
        let idx = self.idx(node, kind, tag);
        let mut t = start;
        while t < end {
            let w = (t / self.window_secs) as usize;
            while self.windows.len() <= w {
                self.windows.push(vec![0.0; self.nodes * KINDS * TAGS]);
            }
            let w_end = ((w + 1) as f64) * self.window_secs;
            let seg_end = end.min(w_end);
            self.windows[w][idx] += rate * (seg_end - t);
            t = seg_end;
        }
    }

    /// Accounts a flow killed by `node`'s failure: `bytes` of its transfer
    /// were still in flight (wasted work).
    pub(crate) fn record_abort(&mut self, node: usize, tag: Traffic, bytes: f64, at_secs: f64) {
        debug_assert!(node < self.nodes);
        self.aborted[node * TAGS + tag.index()] += bytes;
        self.abort_events += 1;
        self.last_abort_secs = self.last_abort_secs.max(at_secs);
    }

    /// Bytes of one traffic class that were in flight when flows through
    /// `node` were killed by its failure.
    pub fn aborted_bytes(&self, node: usize, tag: Traffic) -> f64 {
        self.aborted[node * TAGS + tag.index()]
    }

    /// Total in-flight bytes killed by node failures, across all nodes and
    /// classes.
    pub fn total_aborted_bytes(&self) -> f64 {
        self.aborted.iter().sum()
    }

    /// Number of flows killed by node failures.
    pub fn abort_count(&self) -> usize {
        self.abort_events
    }

    /// Time of the most recent flow abort, in seconds (0 if none).
    pub fn last_abort_secs(&self) -> f64 {
        self.last_abort_secs
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Number of windows with any recorded time so far.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Usage of one (window, node, resource, class) cell.
    ///
    /// Returns an empty sample for windows beyond the recorded horizon.
    pub fn usage(
        &self,
        window: usize,
        node: usize,
        kind: ResourceKind,
        tag: Traffic,
    ) -> UsageSample {
        let Some(w) = self.windows.get(window) else {
            return UsageSample::default();
        };
        let start = window as f64 * self.window_secs;
        let seconds = (self.horizon - start).clamp(0.0, self.window_secs);
        UsageSample {
            bytes: w[self.idx(node, kind, tag)],
            seconds,
        }
    }

    /// Per-window average rates for one (node, resource, class), in bytes/s.
    pub fn rate_series(&self, node: usize, kind: ResourceKind, tag: Traffic) -> Vec<f64> {
        (0..self.window_count())
            .map(|w| self.usage(w, node, kind, tag).rate())
            .collect()
    }

    /// Total bytes a traffic class moved through a node resource.
    pub fn total_bytes(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        let idx = self.idx(node, kind, tag);
        self.windows.iter().map(|w| w[idx]).sum()
    }

    /// The fluctuation (max rate − min rate across windows) of a class on a
    /// node resource — the paper's Fig. 5 metric.
    pub fn fluctuation(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        let series = self.rate_series(node, kind, tag);
        if series.is_empty() {
            return 0.0;
        }
        let max = series.iter().cloned().fold(f64::MIN, f64::max);
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    /// Average rate over the whole recorded horizon for a class on a node
    /// resource.
    pub fn mean_rate(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        if self.horizon > 0.0 {
            self.total_bytes(node, kind, tag) / self.horizon
        } else {
            0.0
        }
    }

    /// Convenience: verifies no cell ever exceeded its capacity (sanity
    /// check used by tests; returns the worst relative overshoot).
    pub fn worst_overshoot(&self, caps: &[NodeCaps]) -> f64 {
        let mut worst: f64 = 0.0;
        for (w, win) in self.windows.iter().enumerate() {
            let start = w as f64 * self.window_secs;
            let seconds = (self.horizon - start).clamp(0.0, self.window_secs);
            if seconds <= 0.0 {
                continue;
            }
            for node in 0..self.nodes {
                for kind in ResourceKind::ALL {
                    let total: f64 = Traffic::ALL
                        .iter()
                        .map(|&t| win[self.idx(node, kind, t)])
                        .sum();
                    let cap = caps[node].capacity(kind) * seconds;
                    if cap > 0.0 {
                        worst = worst.max(total / cap - 1.0);
                    }
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_across_windows() {
        let mut m = Monitor::new(1, 10.0);
        // 4 bytes/s from t=5 to t=15: 20 bytes in window 0, 20 in window 1.
        m.record(5.0, 15.0, 4.0, 0, ResourceKind::Uplink, Traffic::Repair);
        assert_eq!(m.window_count(), 2);
        let w0 = m.usage(0, 0, ResourceKind::Uplink, Traffic::Repair);
        let w1 = m.usage(1, 0, ResourceKind::Uplink, Traffic::Repair);
        assert!((w0.bytes - 20.0).abs() < 1e-9);
        assert!((w1.bytes - 20.0).abs() < 1e-9);
        // Window 1 only covers 5 seconds of horizon so far.
        assert!((w1.seconds - 5.0).abs() < 1e-9);
        assert!((w1.rate() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classes_are_separate() {
        let mut m = Monitor::new(2, 10.0);
        m.record(
            0.0,
            1.0,
            8.0,
            1,
            ResourceKind::Downlink,
            Traffic::Foreground,
        );
        m.record(0.0, 1.0, 2.0, 1, ResourceKind::Downlink, Traffic::Repair);
        assert_eq!(
            m.total_bytes(1, ResourceKind::Downlink, Traffic::Foreground),
            8.0
        );
        assert_eq!(
            m.total_bytes(1, ResourceKind::Downlink, Traffic::Repair),
            2.0
        );
        assert_eq!(
            m.total_bytes(0, ResourceKind::Downlink, Traffic::Repair),
            0.0
        );
    }

    #[test]
    fn fluctuation_is_max_minus_min() {
        let mut m = Monitor::new(1, 1.0);
        m.record(0.0, 1.0, 10.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        m.record(1.0, 2.0, 4.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        m.record(2.0, 3.0, 7.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        assert!((m.fluctuation(0, ResourceKind::Uplink, Traffic::Foreground) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_window_is_empty() {
        let m = Monitor::new(1, 1.0);
        let s = m.usage(7, 0, ResourceKind::Uplink, Traffic::Repair);
        assert_eq!(s.bytes, 0.0);
        assert_eq!(s.rate(), 0.0);
    }
}
