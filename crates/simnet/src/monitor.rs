//! Windowed bandwidth accounting per node, resource, and traffic class.

use crate::node::{NodeCaps, ResourceKind, Traffic};

/// Bytes observed for one (window, node, resource, class) combination.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageSample {
    /// Bytes transferred in the window.
    pub bytes: f64,
    /// Window length in seconds (the final window may be partial).
    pub seconds: f64,
}

impl UsageSample {
    /// Average rate over the window, in bytes/s (0 for an empty window).
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds
        } else {
            0.0
        }
    }
}

const KINDS: usize = 4;
const TAGS: usize = 3;

/// Records how many bytes each traffic class moved through each node
/// resource, in consecutive fixed-length time windows (15 s in the paper's
/// §II-D analysis).
///
/// The monitor is filled by the [`Simulator`](crate::Simulator) as flows
/// progress; experiments read it to compute fluctuation (Fig. 5) and
/// most/least-loaded link statistics (Fig. 6).
#[derive(Debug, Clone)]
pub struct Monitor {
    window_secs: f64,
    nodes: usize,
    /// Number of shared link resources (0 without a topology); link cells
    /// are appended after the `nodes × KINDS` node cells.
    links: usize,
    /// `windows[w][idx(node, kind, tag)]` = bytes; link usage lives at
    /// `((nodes × KINDS + link) × TAGS + tag)`.
    windows: Vec<Vec<f64>>,
    /// Total simulated time covered so far.
    horizon: f64,
    /// `aborted[node * TAGS + tag]` = bytes of in-flight transfer killed by
    /// that node's failure (fault injection); the wasted-work ledger.
    aborted: Vec<f64>,
    /// Number of flows killed by node failures.
    abort_events: usize,
    /// Time of the most recent abort, in seconds (0 if none).
    last_abort_secs: f64,
}

impl Monitor {
    /// Creates a monitor for `nodes` nodes plus `links` shared link
    /// resources with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub(crate) fn new(nodes: usize, links: usize, window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window length must be positive");
        Monitor {
            window_secs,
            nodes,
            links,
            windows: Vec::new(),
            horizon: 0.0,
            aborted: vec![0.0; nodes * TAGS],
            abort_events: 0,
            last_abort_secs: 0.0,
        }
    }

    fn idx(&self, node: usize, kind: ResourceKind, tag: Traffic) -> usize {
        debug_assert!(node < self.nodes);
        (node * KINDS + kind.index()) * TAGS + tag.index()
    }

    fn link_idx(&self, link: usize, tag: Traffic) -> usize {
        assert!(link < self.links, "link {link} out of range");
        (self.nodes * KINDS + link) * TAGS + tag.index()
    }

    /// Accounts a constant-rate transfer segment `[start, end)` on a node
    /// resource.
    #[cfg(test)]
    pub(crate) fn record(
        &mut self,
        start: f64,
        end: f64,
        rate: f64,
        node: usize,
        kind: ResourceKind,
        tag: Traffic,
    ) {
        let idx = self.idx(node, kind, tag);
        self.record_idx(start, end, rate, idx);
    }

    /// Accounts a constant-rate transfer segment `[start, end)` on a
    /// packed resource cell — a node cell (`node × KINDS + kind`) or a
    /// link cell (`nodes × KINDS + link`).
    pub(crate) fn record_cell(
        &mut self,
        start: f64,
        end: f64,
        rate: f64,
        cell: usize,
        tag: Traffic,
    ) {
        debug_assert!(cell < self.nodes * KINDS + self.links);
        self.record_idx(start, end, rate, cell * TAGS + tag.index());
    }

    fn record_idx(&mut self, start: f64, end: f64, rate: f64, idx: usize) {
        debug_assert!(end >= start);
        self.horizon = self.horizon.max(end);
        if rate <= 0.0 || end <= start {
            return;
        }
        let win = self.window_secs;
        // Iterate over *integer* window indices. The previous float-stepping
        // loop (`t = seg_end` with `seg_end = (w+1)*win`) could truncate
        // `(t / win) as usize` back to the same window when the boundary is
        // not exactly representable (e.g. win = 0.1 at large indices),
        // producing zero-length segments — a livelock — or crediting
        // boundary bytes to the wrong window. Incrementing `w` guarantees
        // forward progress and attributes each overlap exactly once.
        let mut w = (start / win).floor() as usize;
        loop {
            let w_start = w as f64 * win;
            if w_start >= end {
                break;
            }
            let overlap = end.min(w_start + win) - start.max(w_start);
            if overlap > 0.0 {
                while self.windows.len() <= w {
                    self.windows
                        .push(vec![0.0; (self.nodes * KINDS + self.links) * TAGS]);
                }
                self.windows[w][idx] += rate * overlap;
            }
            w += 1;
        }
    }

    /// Accounts a flow killed by `node`'s failure: `bytes` of its transfer
    /// were still in flight (wasted work).
    pub(crate) fn record_abort(&mut self, node: usize, tag: Traffic, bytes: f64, at_secs: f64) {
        debug_assert!(node < self.nodes);
        self.aborted[node * TAGS + tag.index()] += bytes;
        self.abort_events += 1;
        self.last_abort_secs = self.last_abort_secs.max(at_secs);
    }

    /// Bytes of one traffic class that were in flight when flows through
    /// `node` were killed by its failure.
    pub fn aborted_bytes(&self, node: usize, tag: Traffic) -> f64 {
        self.aborted[node * TAGS + tag.index()]
    }

    /// Total in-flight bytes killed by node failures, across all nodes and
    /// classes.
    pub fn total_aborted_bytes(&self) -> f64 {
        self.aborted.iter().sum()
    }

    /// Number of flows killed by node failures.
    pub fn abort_count(&self) -> usize {
        self.abort_events
    }

    /// Time of the most recent flow abort, in seconds (0 if none).
    pub fn last_abort_secs(&self) -> f64 {
        self.last_abort_secs
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Number of windows with any recorded time so far.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Usage of one (window, node, resource, class) cell.
    ///
    /// Returns an empty sample for windows beyond the recorded horizon.
    pub fn usage(
        &self,
        window: usize,
        node: usize,
        kind: ResourceKind,
        tag: Traffic,
    ) -> UsageSample {
        let Some(w) = self.windows.get(window) else {
            return UsageSample::default();
        };
        let start = window as f64 * self.window_secs;
        let seconds = (self.horizon - start).clamp(0.0, self.window_secs);
        UsageSample {
            bytes: w[self.idx(node, kind, tag)],
            seconds,
        }
    }

    /// Per-window average rates for one (node, resource, class), in bytes/s.
    pub fn rate_series(&self, node: usize, kind: ResourceKind, tag: Traffic) -> Vec<f64> {
        (0..self.window_count())
            .map(|w| self.usage(w, node, kind, tag).rate())
            .collect()
    }

    /// Total bytes a traffic class moved through a node resource.
    pub fn total_bytes(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        let idx = self.idx(node, kind, tag);
        self.windows.iter().map(|w| w[idx]).sum()
    }

    /// Number of shared link resources the monitor tracks (0 without a
    /// topology).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Usage of one (window, link, class) cell on a shared fabric link.
    ///
    /// Returns an empty sample for windows beyond the recorded horizon.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_usage(&self, window: usize, link: usize, tag: Traffic) -> UsageSample {
        let idx = self.link_idx(link, tag);
        let Some(w) = self.windows.get(window) else {
            return UsageSample::default();
        };
        let start = window as f64 * self.window_secs;
        let seconds = (self.horizon - start).clamp(0.0, self.window_secs);
        UsageSample {
            bytes: w[idx],
            seconds,
        }
    }

    /// Total bytes a traffic class moved through a shared fabric link —
    /// summing a rack's ToR uplink gives its cross-rack egress, the
    /// quantity the oversubscription experiments plot.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_total_bytes(&self, link: usize, tag: Traffic) -> f64 {
        let idx = self.link_idx(link, tag);
        self.windows.iter().map(|w| w[idx]).sum()
    }

    /// Per-window average rates for one (link, class), in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_rate_series(&self, link: usize, tag: Traffic) -> Vec<f64> {
        (0..self.window_count())
            .map(|w| self.link_usage(w, link, tag).rate())
            .collect()
    }

    /// The fluctuation (max rate − min rate across windows) of a class on a
    /// node resource — the paper's Fig. 5 metric.
    ///
    /// The series is restricted to the class's *active interval*: the span
    /// from its first to its last nonzero window on this cell. The monitor's
    /// global horizon is extended by every class on every node, so without
    /// the restriction, leading/trailing windows created by *other* traffic
    /// would drag a quiet class's min rate to 0 and inflate the metric. The
    /// paper's §II-D measurement likewise samples only while the workload
    /// under study is running; idle windows *inside* the active interval
    /// still count — a class that stalls mid-run genuinely fluctuates.
    pub fn fluctuation(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        let series = self.rate_series(node, kind, tag);
        let Some(first) = series.iter().position(|&r| r > 0.0) else {
            return 0.0;
        };
        let last = series
            .iter()
            .rposition(|&r| r > 0.0)
            .expect("nonzero entry exists");
        let active = &series[first..=last];
        let max = active.iter().cloned().fold(f64::MIN, f64::max);
        let min = active.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    /// Average rate over the whole recorded horizon for a class on a node
    /// resource.
    ///
    /// Unlike [`fluctuation`](Self::fluctuation), this deliberately keeps
    /// the *global* horizon as the divisor: the Fig. 6 link-load comparison
    /// ranks nodes against each other, which needs a common denominator —
    /// dividing each node by its own active interval would make a briefly
    /// busy link look as loaded as a continuously busy one.
    pub fn mean_rate(&self, node: usize, kind: ResourceKind, tag: Traffic) -> f64 {
        if self.horizon > 0.0 {
            self.total_bytes(node, kind, tag) / self.horizon
        } else {
            0.0
        }
    }

    /// Convenience: verifies no cell ever exceeded its capacity (sanity
    /// check used by tests; returns the worst relative overshoot).
    ///
    /// # Panics
    ///
    /// Panics if `caps` has fewer entries than the monitor tracks nodes.
    pub fn worst_overshoot(&self, caps: &[NodeCaps]) -> f64 {
        assert!(
            caps.len() >= self.nodes,
            "worst_overshoot: caps slice has {} entries but the monitor tracks {} nodes",
            caps.len(),
            self.nodes
        );
        let mut worst: f64 = 0.0;
        for (w, win) in self.windows.iter().enumerate() {
            let start = w as f64 * self.window_secs;
            let seconds = (self.horizon - start).clamp(0.0, self.window_secs);
            if seconds <= 0.0 {
                continue;
            }
            for node in 0..self.nodes {
                for kind in ResourceKind::ALL {
                    let total: f64 = Traffic::ALL
                        .iter()
                        .map(|&t| win[self.idx(node, kind, t)])
                        .sum();
                    let cap = caps[node].capacity(kind) * seconds;
                    if cap > 0.0 {
                        worst = worst.max(total / cap - 1.0);
                    }
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_across_windows() {
        let mut m = Monitor::new(1, 0, 10.0);
        // 4 bytes/s from t=5 to t=15: 20 bytes in window 0, 20 in window 1.
        m.record(5.0, 15.0, 4.0, 0, ResourceKind::Uplink, Traffic::Repair);
        assert_eq!(m.window_count(), 2);
        let w0 = m.usage(0, 0, ResourceKind::Uplink, Traffic::Repair);
        let w1 = m.usage(1, 0, ResourceKind::Uplink, Traffic::Repair);
        assert!((w0.bytes - 20.0).abs() < 1e-9);
        assert!((w1.bytes - 20.0).abs() < 1e-9);
        // Window 1 only covers 5 seconds of horizon so far.
        assert!((w1.seconds - 5.0).abs() < 1e-9);
        assert!((w1.rate() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classes_are_separate() {
        let mut m = Monitor::new(2, 0, 10.0);
        m.record(
            0.0,
            1.0,
            8.0,
            1,
            ResourceKind::Downlink,
            Traffic::Foreground,
        );
        m.record(0.0, 1.0, 2.0, 1, ResourceKind::Downlink, Traffic::Repair);
        assert_eq!(
            m.total_bytes(1, ResourceKind::Downlink, Traffic::Foreground),
            8.0
        );
        assert_eq!(
            m.total_bytes(1, ResourceKind::Downlink, Traffic::Repair),
            2.0
        );
        assert_eq!(
            m.total_bytes(0, ResourceKind::Downlink, Traffic::Repair),
            0.0
        );
    }

    #[test]
    fn fluctuation_is_max_minus_min() {
        let mut m = Monitor::new(1, 0, 1.0);
        m.record(0.0, 1.0, 10.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        m.record(1.0, 2.0, 4.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        m.record(2.0, 3.0, 7.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        assert!((m.fluctuation(0, ResourceKind::Uplink, Traffic::Foreground) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_window_is_empty() {
        let m = Monitor::new(1, 0, 1.0);
        let s = m.usage(7, 0, ResourceKind::Uplink, Traffic::Repair);
        assert_eq!(s.bytes, 0.0);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn non_representable_window_lengths_conserve_bytes_over_long_horizons() {
        // window_secs = 0.1 is not exactly representable; the old float
        // stepping loop could produce zero-length segments at boundaries
        // far from zero. Record many short segments deep into the horizon
        // and check conservation and termination.
        let mut m = Monitor::new(1, 0, 0.1);
        let mut expected = 0.0;
        for k in 0..5000u32 {
            // Segments that start exactly on (float-computed) boundaries.
            let start = k as f64 * 0.1;
            let end = (k + 1) as f64 * 0.1;
            m.record(start, end, 3.0, 0, ResourceKind::Uplink, Traffic::Repair);
            expected += 3.0 * (end - start);
        }
        let total = m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair);
        assert!(
            (total - expected).abs() < 1e-6,
            "conservation broke: {total} vs {expected}"
        );
        // One long segment spanning thousands of windows must also
        // terminate and conserve.
        let mut m = Monitor::new(1, 0, 0.1);
        m.record(0.0, 1000.0, 2.0, 0, ResourceKind::Downlink, Traffic::Repair);
        let total = m.total_bytes(0, ResourceKind::Downlink, Traffic::Repair);
        assert!((total - 2000.0).abs() < 1e-6, "long segment lost bytes");
        assert!(m.window_count() >= 9999);
    }

    #[test]
    fn boundary_segment_lands_in_one_window() {
        // A segment exactly filling window w must not leak into w+1.
        let mut m = Monitor::new(1, 0, 0.1);
        let w = 4321usize;
        m.record(
            w as f64 * 0.1,
            (w + 1) as f64 * 0.1,
            10.0,
            0,
            ResourceKind::Uplink,
            Traffic::Foreground,
        );
        let inside = m.usage(w, 0, ResourceKind::Uplink, Traffic::Foreground);
        let after = m.usage(w + 1, 0, ResourceKind::Uplink, Traffic::Foreground);
        assert!((inside.bytes - 1.0).abs() < 1e-9);
        assert_eq!(after.bytes, 0.0);
    }

    #[test]
    fn fluctuation_ignores_other_traffic_horizon() {
        // Repair runs at a steady 10 B/s in windows 0-1; foreground traffic
        // then extends the horizon to window 9. The quiet windows belong to
        // foreground's lifetime, not repair's, and must not drag repair's
        // min rate to 0.
        let mut m = Monitor::new(1, 0, 1.0);
        m.record(0.0, 2.0, 10.0, 0, ResourceKind::Uplink, Traffic::Repair);
        m.record(0.0, 10.0, 3.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        assert!(
            m.fluctuation(0, ResourceKind::Uplink, Traffic::Repair)
                .abs()
                < 1e-9,
            "steady repair traffic should have zero fluctuation"
        );
        // An idle window *inside* the active interval still counts.
        m.record(4.0, 5.0, 10.0, 0, ResourceKind::Uplink, Traffic::Repair);
        assert!((m.fluctuation(0, ResourceKind::Uplink, Traffic::Repair) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fluctuation_of_silent_class_is_zero() {
        let mut m = Monitor::new(1, 0, 1.0);
        m.record(0.0, 5.0, 3.0, 0, ResourceKind::Uplink, Traffic::Foreground);
        assert_eq!(m.fluctuation(0, ResourceKind::Uplink, Traffic::Repair), 0.0);
    }

    #[test]
    #[should_panic(expected = "caps slice has 1 entries but the monitor tracks 2 nodes")]
    fn worst_overshoot_rejects_short_caps_slice() {
        let mut m = Monitor::new(2, 0, 1.0);
        m.record(0.0, 1.0, 1.0, 1, ResourceKind::Uplink, Traffic::Repair);
        let caps = vec![NodeCaps::symmetric(10.0, 10.0)];
        m.worst_overshoot(&caps);
    }

    #[test]
    fn worst_overshoot_accepts_full_caps_slice() {
        let mut m = Monitor::new(2, 0, 1.0);
        m.record(0.0, 1.0, 5.0, 1, ResourceKind::Uplink, Traffic::Repair);
        let caps = vec![NodeCaps::symmetric(10.0, 10.0); 2];
        assert!(m.worst_overshoot(&caps) <= 0.0);
    }

    #[test]
    fn link_cells_accumulate_independently_of_node_cells() {
        // 2 nodes (8 node cells) + 3 links; link 1 is cell 9.
        let mut m = Monitor::new(2, 3, 1.0);
        m.record_cell(0.0, 2.0, 4.0, 2 * KINDS + 1, Traffic::Repair);
        m.record_cell(0.0, 1.0, 6.0, 0, Traffic::Repair); // node 0 uplink
        assert_eq!(m.link_count(), 3);
        assert!((m.link_total_bytes(1, Traffic::Repair) - 8.0).abs() < 1e-9);
        assert_eq!(m.link_total_bytes(0, Traffic::Repair), 0.0);
        assert_eq!(m.link_total_bytes(1, Traffic::Foreground), 0.0);
        // Node accounting is untouched by link cells.
        assert!((m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair) - 6.0).abs() < 1e-9);
        let s = m.link_usage(0, 1, Traffic::Repair);
        assert!((s.bytes - 4.0).abs() < 1e-9);
        assert!((s.rate() - 4.0).abs() < 1e-9);
        assert_eq!(m.link_rate_series(1, Traffic::Repair).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_query_out_of_range_panics() {
        let m = Monitor::new(2, 1, 1.0);
        let _ = m.link_total_bytes(1, Traffic::Repair);
    }
}
