//! The discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

use crate::flow::{Flow, FlowId, FlowSpec, TimerId};
use crate::maxmin::allocate_rates;
use crate::monitor::Monitor;
use crate::node::{NodeCaps, NodeId, ResourceKind, Traffic};
use crate::time::SimTime;

/// Bytes below which a flow counts as finished (guards float rounding).
const EPS_BYTES: f64 = 1e-6;

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-node resource capacities.
    pub nodes: Vec<NodeCaps>,
    /// Length of the bandwidth-monitor windows, in seconds (the paper
    /// analyses 15 s windows).
    pub monitor_window_secs: f64,
}

impl SimConfig {
    /// `count` identical nodes with the default 15 s monitor window.
    ///
    /// # Examples
    ///
    /// ```
    /// use chameleon_simnet::{NodeCaps, SimConfig};
    /// let cfg = SimConfig::uniform(20, NodeCaps::default());
    /// assert_eq!(cfg.nodes.len(), 20);
    /// ```
    pub fn uniform(count: usize, caps: NodeCaps) -> Self {
        SimConfig {
            nodes: vec![caps; count],
            monitor_window_secs: 15.0,
        }
    }
}

/// An observable simulation event, returned by [`Simulator::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow delivered its final byte.
    FlowCompleted {
        /// The finished flow.
        id: FlowId,
        /// Its traffic class.
        tag: Traffic,
    },
    /// A timer fired.
    Timer {
        /// The timer's identity.
        id: TimerId,
        /// The caller-supplied dispatch key.
        key: u64,
    },
}

/// The flow-level cluster simulator.
///
/// Drivers start flows and timers, then repeatedly call
/// [`Simulator::next_event`], reacting to completions. Between events all
/// active flows progress at their max–min fair rates.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    node_caps: Vec<NodeCaps>,
    /// Flattened capacities: `caps[node * 4 + kind]`.
    caps: Vec<f64>,
    /// Active flows, keyed by id for deterministic iteration order.
    flows: BTreeMap<u64, Flow>,
    next_flow_id: u64,
    next_timer_id: u64,
    /// Min-heap of (fire time, timer id, key).
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled_timers: HashSet<u64>,
    rates_stale: bool,
    monitor: Monitor,
}

impl Simulator {
    /// Creates a simulator at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no nodes.
    pub fn new(config: SimConfig) -> Self {
        assert!(!config.nodes.is_empty(), "at least one node required");
        let caps = config
            .nodes
            .iter()
            .flat_map(|n| ResourceKind::ALL.map(|k| n.capacity(k)))
            .collect();
        let monitor = Monitor::new(config.nodes.len(), config.monitor_window_secs);
        Simulator {
            now: SimTime::ZERO,
            caps,
            node_caps: config.nodes,
            flows: BTreeMap::new(),
            next_flow_id: 0,
            next_timer_id: 0,
            timers: BinaryHeap::new(),
            cancelled_timers: HashSet::new(),
            rates_stale: true,
            monitor,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.node_caps.len()
    }

    /// Capacities of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_caps(&self, node: NodeId) -> NodeCaps {
        self.node_caps[node]
    }

    /// Capacity of one node resource, in bytes/s.
    pub fn capacity(&self, node: NodeId, kind: ResourceKind) -> f64 {
        self.node_caps[node].capacity(kind)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The windowed bandwidth monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Starts a flow; it begins transferring immediately.
    ///
    /// # Panics
    ///
    /// Panics if the spec references a node out of range.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for &(node, _) in spec.constraints() {
            assert!(node < self.node_caps.len(), "node {node} out of range");
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let remaining = spec.bytes;
        self.flows.insert(
            id.0,
            Flow {
                spec,
                remaining,
                rate: 0.0,
            },
        );
        self.rates_stale = true;
        id
    }

    /// Cancels a flow, returning the bytes it had left, or `None` if it has
    /// already completed (or never existed).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<f64> {
        let flow = self.flows.remove(&id.0)?;
        self.rates_stale = true;
        Some(flow.remaining)
    }

    /// Current max–min fair rate of a flow, in bytes/s.
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.refresh_rates();
        self.flows.get(&id.0).map(|f| f.rate)
    }

    /// Bytes a flow still has to transfer.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.remaining)
    }

    /// Instantaneous aggregate rate of one traffic class through one node
    /// resource, in bytes/s — what a bandwidth monitor daemon (NetHogs in
    /// the paper) would report right now.
    pub fn class_rate(&mut self, node: NodeId, kind: ResourceKind, tag: Traffic) -> f64 {
        self.refresh_rates();
        self.flows
            .values()
            .filter(|f| f.spec.tag == tag)
            .filter(|f| f.spec.constraints.contains(&(node, kind)))
            .map(|f| f.rate)
            .sum()
    }

    /// Residual (idle) bandwidth of a node resource after subtracting the
    /// given traffic classes — the quantity ChameleonEC dispatches against.
    pub fn residual_capacity(
        &mut self,
        node: NodeId,
        kind: ResourceKind,
        subtract: &[Traffic],
    ) -> f64 {
        let cap = self.capacity(node, kind);
        let used: f64 = subtract
            .iter()
            .map(|&t| self.class_rate(node, kind, t))
            .sum();
        (cap - used).max(0.0)
    }

    /// Number of active flows of one traffic class crossing a node
    /// resource. Schedulers use this for fair-share estimates: a new flow
    /// on a saturated resource still gets roughly `capacity / (count+1)`.
    pub fn class_flow_count(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> usize {
        self.flows
            .values()
            .filter(|f| f.spec.tag == tag)
            .filter(|f| f.spec.constraints.contains(&(node, kind)))
            .count()
    }

    /// Schedules a timer to fire `delay_secs` from now, with a caller-chosen
    /// dispatch key.
    ///
    /// # Panics
    ///
    /// Panics if `delay_secs` is negative or NaN.
    pub fn schedule_in(&mut self, delay_secs: f64, key: u64) -> TimerId {
        self.schedule_at(self.now + SimTime::from_secs(delay_secs), key)
    }

    /// Schedules a timer at an absolute time (clamped to now if in the
    /// past).
    pub fn schedule_at(&mut self, at: SimTime, key: u64) -> TimerId {
        let at = at.max(self.now);
        let id = TimerId(self.next_timer_id);
        self.next_timer_id += 1;
        self.timers.push(Reverse((at, id.0, key)));
        id
    }

    /// Cancels a pending timer (no effect if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id.0);
    }

    /// Advances the simulation to the next event and returns it, or `None`
    /// when no flows or timers remain.
    ///
    /// # Panics
    ///
    /// Panics if active flows can never finish (all rates zero) and no
    /// timer is pending — a configuration bug that would hang a real
    /// system.
    pub fn next_event(&mut self) -> Option<Event> {
        // Discard cancelled timers at the head.
        while let Some(Reverse((_, id, _))) = self.timers.peek() {
            if self.cancelled_timers.remove(id) {
                self.timers.pop();
            } else {
                break;
            }
        }

        if self.flows.is_empty() && self.timers.is_empty() {
            return None;
        }

        self.refresh_rates();

        // Earliest flow completion (ties broken by lowest id, which BTreeMap
        // iteration gives us for free).
        let mut flow_done: Option<(SimTime, u64)> = None;
        for (&id, f) in &self.flows {
            let t = if f.remaining <= EPS_BYTES {
                self.now
            } else if f.rate > 0.0 {
                self.now + SimTime::from_secs(f.remaining / f.rate)
            } else {
                continue; // starved flow; cannot finish at current rates
            };
            if flow_done.is_none_or(|(bt, _)| t < bt) {
                flow_done = Some((t, id));
            }
        }

        let timer_next = self
            .timers
            .peek()
            .map(|Reverse((t, id, key))| (*t, *id, *key));

        let (event_time, is_flow) = match (flow_done, timer_next) {
            (Some((tf, _)), Some((tt, _, _))) => {
                if tf <= tt {
                    (tf, true)
                } else {
                    (tt, false)
                }
            }
            (Some((tf, _)), None) => (tf, true),
            (None, Some((tt, _, _))) => (tt, false),
            (None, None) => {
                panic!(
                    "simulation stalled: {} active flows have zero rate and no timers pending",
                    self.flows.len()
                );
            }
        };

        self.advance_to(event_time);

        if is_flow {
            let id = flow_done.expect("flow event chosen").1;
            let flow = self.flows.remove(&id).expect("flow exists");
            self.rates_stale = true;
            Some(Event::FlowCompleted {
                id: FlowId(id),
                tag: flow.spec.tag,
            })
        } else {
            let Reverse((_, id, key)) = self.timers.pop().expect("timer event chosen");
            Some(Event::Timer {
                id: TimerId(id),
                key,
            })
        }
    }

    /// Moves time forward, progressing flows and recording monitor usage.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        let dt = (t - self.now).as_secs();
        if dt > 0.0 {
            let start = self.now.as_secs();
            let end = t.as_secs();
            for f in self.flows.values_mut() {
                if f.rate > 0.0 {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                }
            }
            // Borrow juggling: record after updating.
            for f in self.flows.values() {
                if f.rate > 0.0 {
                    for &(node, kind) in &f.spec.constraints {
                        self.monitor
                            .record(start, end, f.rate, node, kind, f.spec.tag);
                    }
                }
            }
        }
        self.now = t;
    }

    /// Recomputes max–min fair rates if the flow set changed.
    fn refresh_rates(&mut self) {
        if !self.rates_stale {
            return;
        }
        let flow_resources: Vec<Vec<usize>> = self
            .flows
            .values()
            .map(|f| {
                f.spec
                    .constraints
                    .iter()
                    .map(|&(node, kind)| node * 4 + kind.index())
                    .collect()
            })
            .collect();
        let rates = allocate_rates(&self.caps, &flow_resources);
        for (f, rate) in self.flows.values_mut().zip(rates) {
            f.rate = rate;
        }
        self.rates_stale = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_sim() -> Simulator {
        Simulator::new(SimConfig::uniform(2, NodeCaps::symmetric(100.0, 50.0)))
    }

    #[test]
    fn single_flow_finishes_at_capacity_rate() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        assert_eq!(sim.flow_rate(f), Some(100.0));
        let ev = sim.next_event().unwrap();
        assert_eq!(
            ev,
            Event::FlowCompleted {
                id: f,
                tag: Traffic::Repair
            }
        );
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Foreground));
        assert_eq!(sim.flow_rate(a), Some(50.0));
        assert_eq!(sim.flow_rate(b), Some(50.0));
        // First completes at t=2 (ties: lowest id first).
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == a));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        // The survivor speeds up to 100 and finishes immediately after.
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == b));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disk_flows_do_not_contend_with_network() {
        let mut sim = two_node_sim();
        let n = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let d = sim.start_flow(FlowSpec::disk_read(0, 50, Traffic::Repair));
        assert_eq!(sim.flow_rate(n), Some(100.0));
        assert_eq!(sim.flow_rate(d), Some(50.0));
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 300, Traffic::Repair)); // done at t=3
        let t = sim.schedule_in(1.0, 42);
        let ev = sim.next_event().unwrap();
        assert_eq!(ev, Event::Timer { id: t, key: 42 });
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { .. }));
        assert!((sim.now().as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = two_node_sim();
        let t = sim.schedule_in(1.0, 1);
        sim.schedule_in(2.0, 2);
        sim.cancel_timer(t);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::Timer { key: 2, .. }));
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn cancel_flow_returns_remaining() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.schedule_in(0.5, 0);
        let _ = sim.next_event();
        let left = sim.cancel_flow(f).unwrap();
        assert!((left - 50.0).abs() < 1e-9);
        assert_eq!(sim.cancel_flow(f), None);
    }

    #[test]
    fn class_rate_and_residual_capacity() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Foreground));
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Foreground),
            100.0
        );
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Repair),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(0, ResourceKind::Uplink, &[Traffic::Foreground]),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(1, ResourceKind::Uplink, &[Traffic::Foreground]),
            100.0
        );
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 0, Traffic::Repair));
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == f));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn monitor_accounts_transferred_bytes() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        while sim.next_event().is_some() {}
        let m = sim.monitor();
        assert!((m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert!((m.total_bytes(1, ResourceKind::Downlink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert_eq!(m.total_bytes(1, ResourceKind::Uplink, Traffic::Repair), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flow_to_unknown_node_rejected() {
        let mut sim = two_node_sim();
        let _ = sim.start_flow(FlowSpec::network(0, 9, 1, Traffic::Repair));
    }

    #[test]
    fn deterministic_event_order_across_runs() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            let mut log = Vec::new();
            for i in 0..3u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    3,
                    50 + i * 10,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(2.0, 7);
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
