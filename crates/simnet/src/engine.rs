//! The discrete-event engine.
//!
//! The default ("indexed") engine is built for trace-scale event
//! throughput:
//!
//! - rates come from the indexed [`MaxMinSolver`] (inverted resource→flow
//!   index, reusable scratch — no per-solve allocation);
//! - flows live in a slab (dense slot vector + free list + id→slot map),
//!   so every per-event pass is a linear scan over contiguous memory and
//!   the constraint cells are packed flat at admission — no tree walks or
//!   per-flow pointer chasing on the hot path;
//! - per-(node, resource, class) aggregate rate and flow-count tables are
//!   maintained incrementally, so [`Simulator::class_rate`],
//!   [`Simulator::residual_capacity`] and [`Simulator::class_flow_count`]
//!   are O(1) lookups (and take `&self`);
//! - the earliest completion comes from a lazy-invalidation binary heap of
//!   predicted completion times, re-pushed only for flows whose rate
//!   actually changed in the last solve; when a solve moves most
//!   predictions at once the heap is rebuilt wholesale (O(F) heapify
//!   instead of F pushes into a heap full of dead entries);
//! - flow `remaining` values are materialized lazily at rate solves, so
//!   advancing time between events touches no per-flow state; the monitor
//!   records from the aggregate class tables instead of per flow.
//!
//! [`Simulator::use_reference_engine`] switches to the original
//! full-rescan implementation (reference solver, linear completion scan,
//! per-flow bookkeeping). It exists as the oracle for the differential
//! test suite and as the baseline for the simulator-throughput benchmark.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use crate::flow::{Flow, FlowId, FlowOutcome, FlowSpec, TimerId, MAX_CONSTRAINTS};
use crate::maxmin::{reference, MaxMinSolver};
use crate::monitor::Monitor;
use crate::node::{NodeCaps, NodeId, ResourceKind, Traffic};
use crate::time::SimTime;
use crate::trace::{AbortCause, EngineProfile, TraceEvent, TraceEventKind, TraceSink};

/// Bytes below which a flow counts as finished (guards float rounding).
const EPS_BYTES: f64 = 1e-6;

/// Full class-rate-table rebuilds happen every this many solves, bounding
/// the drift incremental `+=`/`-=` updates can accumulate.
const TABLE_REBUILD_PERIOD: u64 = 1024;

/// Number of resource kinds per node (the flattened-table stride).
const KINDS: usize = 4;
/// Number of traffic classes (the flattened-table stride).
const TAGS: usize = 3;

/// A *flow group*: all active flows sharing one exact resource-cell
/// sequence. Max–min fairness gives every member the same rate and
/// freezes them in the same progressive-filling round, so the solver can
/// price the whole group at once — a cluster has O(nodes²) distinct
/// shapes no matter how many flows are live.
#[derive(Debug, Clone)]
struct FlowGroup {
    cells: [u32; MAX_CONSTRAINTS],
    ncells: u8,
    /// Number of member flows; 0 means the group slot is free.
    count: u32,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-node resource capacities.
    pub nodes: Vec<NodeCaps>,
    /// Length of the bandwidth-monitor windows, in seconds (the paper
    /// analyses 15 s windows).
    pub monitor_window_secs: f64,
}

impl SimConfig {
    /// `count` identical nodes with the default 15 s monitor window.
    ///
    /// # Examples
    ///
    /// ```
    /// use chameleon_simnet::{NodeCaps, SimConfig};
    /// let cfg = SimConfig::uniform(20, NodeCaps::default());
    /// assert_eq!(cfg.nodes.len(), 20);
    /// ```
    pub fn uniform(count: usize, caps: NodeCaps) -> Self {
        SimConfig {
            nodes: vec![caps; count],
            monitor_window_secs: 15.0,
        }
    }
}

/// An observable simulation event, returned by [`Simulator::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow ended — it either delivered its final byte or was aborted by
    /// a node failure (see the `outcome` field).
    FlowCompleted {
        /// The finished flow.
        id: FlowId,
        /// Its traffic class.
        tag: Traffic,
        /// Whether the flow delivered all of its bytes or was aborted.
        outcome: FlowOutcome,
    },
    /// A timer fired.
    Timer {
        /// The timer's identity.
        id: TimerId,
        /// The caller-supplied dispatch key.
        key: u64,
    },
}

/// The flow-level cluster simulator.
///
/// Drivers start flows and timers, then repeatedly call
/// [`Simulator::next_event`], reacting to completions. Between events all
/// active flows progress at their max–min fair rates.
///
/// Mutating the flow set ([`Simulator::start_flow`],
/// [`Simulator::cancel_flow`]) marks the rates stale; they are re-solved
/// lazily by [`Simulator::next_event`] or an explicit
/// [`Simulator::refresh`]. The `&self` rate read paths
/// ([`Simulator::flow_rate`], [`Simulator::class_rate`],
/// [`Simulator::residual_capacity`]) require fresh rates and panic
/// otherwise — call `refresh()` first when probing between mutations.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    node_caps: Vec<NodeCaps>,
    /// The capacities the simulator was configured with, before any
    /// [`Simulator::scale_node_caps`] fault scaling.
    base_caps: Vec<NodeCaps>,
    /// Nodes currently failed ([`Simulator::fail_node`]): new flows that
    /// touch them abort on admission, existing ones were killed.
    failed_nodes: Vec<bool>,
    /// Abort notifications queued by `fail_node`, delivered (in flow-id
    /// order) by `next_event` ahead of any heap event, without advancing
    /// time.
    pending_aborts: VecDeque<(u64, Traffic)>,
    /// Flattened capacities: `caps[node * 4 + kind]`.
    caps: Vec<f64>,
    /// The flow slab: `None` slots are free (listed in `free_slots`).
    flows: Vec<Option<Flow>>,
    /// The flow id occupying each slot (stale for free slots).
    slot_ids: Vec<u64>,
    /// Free-slot stack; reuse is LIFO and therefore deterministic.
    free_slots: Vec<u32>,
    /// Flow id → slab slot, the O(1) public-lookup path.
    id_to_slot: HashMap<u64, u32>,
    live_flows: usize,
    next_flow_id: u64,
    next_timer_id: u64,
    /// Min-heap of (fire time, timer id, key).
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Ids of pending timers that have been cancelled. Only ids still in
    /// `pending_timers` are ever inserted, so the set cannot leak ids of
    /// timers that already fired.
    cancelled_timers: HashSet<u64>,
    /// Ids of scheduled timers that have not yet fired or been discarded.
    pending_timers: HashSet<u64>,
    rates_stale: bool,
    monitor: Monitor,
    /// Opt-in flow-lifecycle trace ([`Simulator::set_trace_enabled`]);
    /// `None` (the default) makes every hook a branch-and-skip.
    trace: Option<TraceSink>,
    /// Self-profiling counters, maintained unconditionally.
    profile: EngineProfile,

    // --- Indexed-engine state ---
    /// Whether to run the original full-rescan engine instead.
    reference_mode: bool,
    /// Aggregate rate per (node, kind, tag) cell, maintained incrementally
    /// (indexed mode only).
    class_rate_tbl: Vec<f64>,
    /// Active-flow count per (node, kind, tag) cell (maintained in both
    /// modes; integer, exact).
    class_count_tbl: Vec<u32>,
    /// Lazy-invalidation min-heap of (predicted completion, flow id,
    /// epoch).
    completions: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// The time `Flow::remaining` values are accurate as of.
    last_materialize: SimTime,
    solver: MaxMinSolver,
    /// Flow groups (slab; `count == 0` slots are free and listed in
    /// `free_groups`). Maintained in both engine modes, solved against in
    /// indexed mode.
    groups: Vec<FlowGroup>,
    free_groups: Vec<u32>,
    /// Cell sequence → group index (unused key slots are `u32::MAX`).
    group_ids: HashMap<[u32; MAX_CONSTRAINTS], u32>,
    grp_offsets: Vec<u32>,
    grp_targets: Vec<u32>,
    grp_weights: Vec<u32>,
    /// Group index → dense solve row (stale for free groups).
    grp_row: Vec<u32>,
    grp_rates: Vec<f64>,
    /// Every live completion prediction from the last apply pass (the
    /// heap-rebuild source).
    scr_entries: Vec<Reverse<(SimTime, u64, u64)>>,
    /// Predictions re-stamped by the last apply pass (the incremental-push
    /// set).
    scr_changed: Vec<Reverse<(SimTime, u64, u64)>>,
}

// Send-bound audit: whole simulations are executed on worker threads by the
// parallel experiment grid in `chameleon-bench`; the simulator must stay
// free of thread-bound state (Rc, RefCell, raw pointers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator>();
    assert_send_sync::<Monitor>();
};

impl Simulator {
    /// Creates a simulator at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no nodes.
    pub fn new(config: SimConfig) -> Self {
        assert!(!config.nodes.is_empty(), "at least one node required");
        let caps: Vec<f64> = config
            .nodes
            .iter()
            .flat_map(|n| ResourceKind::ALL.map(|k| n.capacity(k)))
            .collect();
        let monitor = Monitor::new(config.nodes.len(), config.monitor_window_secs);
        let cells = config.nodes.len() * KINDS * TAGS;
        Simulator {
            now: SimTime::ZERO,
            caps,
            base_caps: config.nodes.clone(),
            failed_nodes: vec![false; config.nodes.len()],
            pending_aborts: VecDeque::new(),
            node_caps: config.nodes,
            flows: Vec::new(),
            slot_ids: Vec::new(),
            free_slots: Vec::new(),
            id_to_slot: HashMap::new(),
            live_flows: 0,
            next_flow_id: 0,
            next_timer_id: 0,
            timers: BinaryHeap::new(),
            cancelled_timers: HashSet::new(),
            pending_timers: HashSet::new(),
            rates_stale: true,
            monitor,
            trace: None,
            profile: EngineProfile::default(),
            reference_mode: false,
            class_rate_tbl: vec![0.0; cells],
            class_count_tbl: vec![0; cells],
            completions: BinaryHeap::new(),
            last_materialize: SimTime::ZERO,
            solver: MaxMinSolver::new(),
            groups: Vec::new(),
            free_groups: Vec::new(),
            group_ids: HashMap::new(),
            grp_offsets: Vec::new(),
            grp_targets: Vec::new(),
            grp_weights: Vec::new(),
            grp_row: Vec::new(),
            grp_rates: Vec::new(),
            scr_entries: Vec::new(),
            scr_changed: Vec::new(),
        }
    }

    /// Switches between the indexed engine (default, `false`) and the
    /// original full-rescan reference engine.
    ///
    /// The reference engine exists for differential testing and as the
    /// simulator-throughput benchmark baseline; both engines produce the
    /// same event log.
    ///
    /// # Panics
    ///
    /// Panics if flows are already active — pick the engine before
    /// starting traffic.
    pub fn use_reference_engine(&mut self, on: bool) {
        assert!(
            self.live_flows == 0,
            "switch engine modes before starting flows"
        );
        self.reference_mode = on;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.node_caps.len()
    }

    /// Capacities of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_caps(&self, node: NodeId) -> NodeCaps {
        self.node_caps[node]
    }

    /// Capacity of one node resource, in bytes/s.
    pub fn capacity(&self, node: NodeId, kind: ResourceKind) -> f64 {
        self.node_caps[node].capacity(kind)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.live_flows
    }

    /// The windowed bandwidth monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Consumes the simulator, keeping only its bandwidth monitor — the
    /// post-run state experiments analyse. Dropping the flow slab, heaps,
    /// and solver scratch here lets a finished run shed its footprint while
    /// other runs of a parallel experiment grid are still in flight.
    pub fn into_monitor(self) -> Monitor {
        self.monitor
    }

    /// Enables or disables flow-lifecycle tracing.
    ///
    /// Off by default; when off, tracing costs one branch per hook site
    /// and records nothing. Enabling starts a fresh [`TraceSink`];
    /// disabling drops any recorded events. Tracing never influences the
    /// simulation — the event stream is a pure observation, so traced and
    /// untraced runs of the same spec are identical.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace = if on { Some(TraceSink::new()) } else { None };
    }

    /// The recorded flow-lifecycle trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Takes the recorded trace out of the simulator (tracing stops;
    /// re-enable with [`Simulator::set_trace_enabled`] if needed).
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// The engine's self-profiling counters (events delivered, solver
    /// invocations and rounds, heap rebuilds, timer churn).
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            solver_rounds: self.solver.total_rounds(),
            ..self.profile
        }
    }

    /// Emits one lifecycle event for a flow if tracing is on.
    fn trace_flow(&mut self, id: u64, spec: &FlowSpec, kind: TraceEventKind) {
        if let Some(tr) = self.trace.as_mut() {
            let (src, dst) = spec.endpoints();
            tr.push(TraceEvent {
                at_secs: self.now.as_secs(),
                flow: id,
                tag: spec.tag(),
                src,
                dst,
                kind,
            });
        }
    }

    fn cell(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> usize {
        (node * KINDS + kind.index()) * TAGS + tag.index()
    }

    /// Starts a flow; it begins transferring immediately.
    ///
    /// Rates are re-solved lazily, so admitting a burst of flows costs a
    /// single solve (see [`Simulator::start_flows`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec references a node out of range.
    pub fn start_flow(&mut self, mut spec: FlowSpec) -> FlowId {
        for &(node, _) in spec.constraints() {
            assert!(node < self.node_caps.len(), "node {node} out of range");
        }
        // A flow against a failed node is admitted and immediately
        // aborted: the caller gets a normal id and learns of the failure
        // through the same `FlowOutcome::Aborted` notification as a
        // mid-transfer kill, so drivers have one recovery path.
        if spec
            .constraints()
            .iter()
            .any(|&(node, _)| self.failed_nodes[node])
        {
            let id = FlowId(self.next_flow_id);
            self.next_flow_id += 1;
            self.trace_flow(
                id.0,
                &spec,
                TraceEventKind::Admitted {
                    bytes: spec.bytes(),
                },
            );
            self.trace_flow(
                id.0,
                &spec,
                TraceEventKind::Aborted {
                    cause: AbortCause::NodeFailure,
                    remaining: spec.bytes(),
                },
            );
            self.pending_aborts.push_back((id.0, spec.tag()));
            return id;
        }
        // Dedupe repeated (node, kind) pairs: a duplicate would
        // double-count the flow's load in the solver and double-record its
        // bytes in the monitor.
        let c = &mut spec.constraints;
        let mut i = 1;
        while i < c.len() {
            if c[..i].contains(&c[i]) {
                c.remove(i);
            } else {
                i += 1;
            }
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        self.trace_flow(
            id.0,
            &spec,
            TraceEventKind::Admitted {
                bytes: spec.bytes(),
            },
        );
        let mut flow = Flow::new(spec);
        let tag = flow.spec.tag.index();
        for &c in flow.cells() {
            self.class_count_tbl[c as usize * TAGS + tag] += 1;
        }
        flow.group = self.join_group(&flow);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.flows[s as usize] = Some(flow);
                self.slot_ids[s as usize] = id.0;
                s
            }
            None => {
                self.flows.push(Some(flow));
                self.slot_ids.push(id.0);
                (self.flows.len() - 1) as u32
            }
        };
        self.id_to_slot.insert(id.0, slot);
        self.live_flows += 1;
        self.rates_stale = true;
        id
    }

    /// Starts a batch of flows at the current time, returning their ids in
    /// order.
    ///
    /// Admission is lazy in both engines, so the whole batch is priced by
    /// one rate solve — the entry point trace replay should use when an
    /// op fans out into several flows.
    ///
    /// # Panics
    ///
    /// Panics if any spec references a node out of range.
    pub fn start_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) -> Vec<FlowId> {
        specs.into_iter().map(|s| self.start_flow(s)).collect()
    }

    /// The group-map key for a flow: its exact cell sequence, padded with
    /// `u32::MAX`.
    fn group_key(flow: &Flow) -> [u32; MAX_CONSTRAINTS] {
        let mut key = [u32::MAX; MAX_CONSTRAINTS];
        key[..flow.ncells as usize].copy_from_slice(flow.cells());
        key
    }

    /// Adds a flow to the group sharing its resource-cell sequence,
    /// creating the group if it is the first member.
    fn join_group(&mut self, flow: &Flow) -> u32 {
        use std::collections::hash_map::Entry;
        match self.group_ids.entry(Self::group_key(flow)) {
            Entry::Occupied(e) => {
                let g = *e.get();
                self.groups[g as usize].count += 1;
                g
            }
            Entry::Vacant(e) => {
                let grp = FlowGroup {
                    cells: flow.cells,
                    ncells: flow.ncells,
                    count: 1,
                };
                let g = match self.free_groups.pop() {
                    Some(g) => {
                        self.groups[g as usize] = grp;
                        g
                    }
                    None => {
                        self.groups.push(grp);
                        (self.groups.len() - 1) as u32
                    }
                };
                *e.insert(g)
            }
        }
    }

    /// Removes a departed flow from its group, freeing empty groups.
    fn leave_group(&mut self, flow: &Flow) {
        let g = flow.group as usize;
        debug_assert!(self.groups[g].count > 0);
        self.groups[g].count -= 1;
        if self.groups[g].count == 0 {
            self.group_ids.remove(&Self::group_key(flow));
            self.free_groups.push(flow.group);
        }
    }

    /// Detaches a flow from the slab, freeing its slot.
    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let slot = self.id_to_slot.remove(&id)?;
        let flow = self.flows[slot as usize]
            .take()
            .expect("mapped slot occupied");
        self.free_slots.push(slot);
        self.live_flows -= 1;
        Some(flow)
    }

    /// Subtracts a departing flow from the class tables and its group.
    fn retire_flow_accounting(&mut self, flow: &Flow) {
        let tag = flow.spec.tag.index();
        for &c in flow.cells() {
            let cell = c as usize * TAGS + tag;
            debug_assert!(self.class_count_tbl[cell] > 0);
            self.class_count_tbl[cell] -= 1;
            if !self.reference_mode {
                self.class_rate_tbl[cell] -= flow.rate;
            }
        }
        self.leave_group(flow);
    }

    /// `remaining` of a live flow as of `now` (lazily materialized).
    fn live_remaining(&self, flow: &Flow) -> f64 {
        let dt = (self.now - self.last_materialize).as_secs();
        if flow.rate > 0.0 && dt > 0.0 {
            (flow.remaining - flow.rate * dt).max(0.0)
        } else {
            flow.remaining
        }
    }

    /// Cancels a flow, returning the bytes it had left, or `None` if it has
    /// already completed (or never existed).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<f64> {
        let flow = self.remove_flow(id.0)?;
        let left = self.live_remaining(&flow);
        self.retire_flow_accounting(&flow);
        self.trace_flow(
            id.0,
            &flow.spec,
            TraceEventKind::Aborted {
                cause: AbortCause::Cancelled,
                remaining: left,
            },
        );
        self.rates_stale = true;
        Some(left)
    }

    /// Fails a node: every active flow traversing any of its resources is
    /// killed atomically (capacity is released and rates re-solve for the
    /// survivors), and each killed flow surfaces as a
    /// [`Event::FlowCompleted`] with [`FlowOutcome::Aborted`] — in flow-id
    /// order, before any further heap event, without advancing time. Until
    /// [`Simulator::recover_node`], new flows touching the node abort on
    /// admission.
    ///
    /// Failing an already-failed node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fail_node(&mut self, node: NodeId) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        if self.failed_nodes[node] {
            return;
        }
        self.failed_nodes[node] = true;
        // Collect victims in flow-id order so abort delivery (and thus
        // every downstream driver decision) is deterministic regardless of
        // slab layout.
        let mut victims: Vec<u64> = Vec::new();
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            if f.cells().iter().any(|&c| c as usize / KINDS == node) {
                victims.push(self.slot_ids[slot]);
            }
        }
        victims.sort_unstable();
        for id in victims {
            let flow = self.remove_flow(id).expect("victim flow exists");
            let wasted = self.live_remaining(&flow);
            self.retire_flow_accounting(&flow);
            self.monitor
                .record_abort(node, flow.spec.tag, wasted, self.now.as_secs());
            self.trace_flow(
                id,
                &flow.spec,
                TraceEventKind::Aborted {
                    cause: AbortCause::NodeFailure,
                    remaining: wasted,
                },
            );
            self.pending_aborts.push_back((id, flow.spec.tag));
            self.rates_stale = true;
        }
    }

    /// Clears a node's failed state; new flows may traverse it again.
    /// Flows killed by the failure stay dead — restarting them is the
    /// driver's job.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recover_node(&mut self, node: NodeId) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        self.failed_nodes[node] = false;
    }

    /// Whether a node is currently failed.
    pub fn is_node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes[node]
    }

    /// Re-rates a node's capacities to `base × factor` (network and disk
    /// factors applied to the capacities the simulator was built with, so
    /// repeated calls don't compound): the fault primitive behind
    /// transient slowdowns and disk degradation. All flows through the
    /// node are atomically re-rate-limited at the next solve; none are
    /// killed. Factors of `1.0` restore the configured capacities.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or either factor is not positive
    /// and finite.
    pub fn scale_node_caps(&mut self, node: NodeId, net_factor: f64, disk_factor: f64) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        let scaled = self.base_caps[node].scaled(net_factor, disk_factor);
        self.node_caps[node] = scaled;
        for kind in ResourceKind::ALL {
            self.caps[node * KINDS + kind.index()] = scaled.capacity(kind);
        }
        self.rates_stale = true;
    }

    /// Re-solves max–min fair rates now if the flow set changed since the
    /// last solve. The `&self` read paths ([`Simulator::flow_rate`],
    /// [`Simulator::class_rate`], [`Simulator::residual_capacity`])
    /// require this; [`Simulator::next_event`] calls it implicitly.
    pub fn refresh(&mut self) {
        self.refresh_rates();
    }

    #[track_caller]
    fn assert_fresh(&self) {
        assert!(
            !self.rates_stale,
            "rates are stale: call refresh() (or next_event()) after \
             mutating flows before reading rates"
        );
    }

    /// Looks up a live flow by id.
    fn flow(&self, id: u64) -> Option<&Flow> {
        self.id_to_slot.get(&id).map(|&s| {
            self.flows[s as usize]
                .as_ref()
                .expect("mapped slot occupied")
        })
    }

    /// Current max–min fair rate of a flow, in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.assert_fresh();
        self.flow(id.0).map(|f| f.rate)
    }

    /// Bytes a flow still has to transfer.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flow(id.0).map(|f| self.live_remaining(f))
    }

    /// Whether an abort notification for `id` is queued but not yet
    /// delivered. A node failure kills every flow touching the node
    /// atomically but surfaces the aborts one event at a time; a driver
    /// tearing down a whole attempt on the first abort uses this to
    /// account for sibling flows the same failure already killed
    /// (cancelling them is a no-op — they are gone from the engine).
    pub fn abort_pending(&self, id: FlowId) -> bool {
        self.pending_aborts.iter().any(|&(fid, _)| fid == id.0)
    }

    /// Instantaneous aggregate rate of one traffic class through one node
    /// resource, in bytes/s — what a bandwidth monitor daemon (NetHogs in
    /// the paper) would report right now. O(1) in the indexed engine.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn class_rate(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> f64 {
        self.assert_fresh();
        if self.reference_mode {
            self.flows
                .iter()
                .flatten()
                .filter(|f| f.spec.tag == tag)
                .filter(|f| f.spec.constraints.contains(&(node, kind)))
                .map(|f| f.rate)
                .sum()
        } else {
            self.class_rate_tbl[self.cell(node, kind, tag)].max(0.0)
        }
    }

    /// Residual (idle) bandwidth of a node resource after subtracting the
    /// given traffic classes — the quantity ChameleonEC dispatches against.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn residual_capacity(&self, node: NodeId, kind: ResourceKind, subtract: &[Traffic]) -> f64 {
        let cap = self.capacity(node, kind);
        let used: f64 = subtract
            .iter()
            .map(|&t| self.class_rate(node, kind, t))
            .sum();
        (cap - used).max(0.0)
    }

    /// Number of active flows of one traffic class crossing a node
    /// resource. Schedulers use this for fair-share estimates: a new flow
    /// on a saturated resource still gets roughly `capacity / (count+1)`.
    /// O(1): maintained incrementally on admission/retirement.
    pub fn class_flow_count(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> usize {
        self.class_count_tbl[self.cell(node, kind, tag)] as usize
    }

    /// Schedules a timer to fire `delay_secs` from now, with a caller-chosen
    /// dispatch key.
    ///
    /// # Panics
    ///
    /// Panics if `delay_secs` is negative or NaN.
    pub fn schedule_in(&mut self, delay_secs: f64, key: u64) -> TimerId {
        self.schedule_at(self.now + SimTime::from_secs(delay_secs), key)
    }

    /// Schedules a timer at an absolute time (clamped to now if in the
    /// past).
    pub fn schedule_at(&mut self, at: SimTime, key: u64) -> TimerId {
        let at = at.max(self.now);
        let id = TimerId(self.next_timer_id);
        self.next_timer_id += 1;
        self.timers.push(Reverse((at, id.0, key)));
        self.pending_timers.insert(id.0);
        self.profile.timers_scheduled += 1;
        id
    }

    /// Cancels a pending timer (no effect if it already fired or never
    /// existed — stale ids are not retained).
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.pending_timers.contains(&id.0) {
            self.cancelled_timers.insert(id.0);
            self.profile.timers_cancelled += 1;
        }
    }

    /// Advances the simulation to the next event and returns it, or `None`
    /// when no flows or timers remain.
    ///
    /// # Panics
    ///
    /// Panics if active flows can never finish (all rates zero) and no
    /// timer is pending — a configuration bug that would hang a real
    /// system.
    pub fn next_event(&mut self) -> Option<Event> {
        // Queued abort notifications outrank everything: they happened at
        // the current time (when `fail_node` struck), so they are
        // delivered before any heap event and without advancing the clock.
        if let Some((id, tag)) = self.pending_aborts.pop_front() {
            self.profile.events += 1;
            self.profile.flow_aborts += 1;
            return Some(Event::FlowCompleted {
                id: FlowId(id),
                tag,
                outcome: FlowOutcome::Aborted,
            });
        }

        // Discard cancelled timers at the head.
        while let Some(Reverse((_, id, _))) = self.timers.peek() {
            if self.cancelled_timers.remove(id) {
                self.pending_timers.remove(id);
                self.timers.pop();
            } else {
                break;
            }
        }

        if self.live_flows == 0 && self.timers.is_empty() {
            return None;
        }

        self.refresh_rates();

        // Earliest flow completion (ties broken by lowest id).
        let flow_done: Option<(SimTime, u64)> = if self.reference_mode {
            let mut best: Option<(SimTime, u64)> = None;
            for (slot, f) in self.flows.iter().enumerate() {
                let Some(f) = f else { continue };
                let t = if f.remaining <= EPS_BYTES {
                    self.now
                } else if f.rate > 0.0 {
                    self.now + SimTime::from_secs(f.remaining / f.rate)
                } else {
                    continue; // starved flow; cannot finish at current rates
                };
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, self.slot_ids[slot]));
                }
            }
            best
        } else {
            // Pop lazily-invalidated heap entries until a live one
            // surfaces (leave it in place: a timer may still pre-empt it).
            loop {
                match self.completions.peek() {
                    None => break None,
                    Some(&Reverse((t, id, epoch))) => {
                        let live = self.flow(id).is_some_and(|f| f.epoch == epoch);
                        if live {
                            break Some((t, id));
                        }
                        self.completions.pop();
                    }
                }
            }
        };

        let timer_next = self
            .timers
            .peek()
            .map(|Reverse((t, id, key))| (*t, *id, *key));

        let (event_time, is_flow) = match (flow_done, timer_next) {
            (Some((tf, _)), Some((tt, _, _))) => {
                if tf <= tt {
                    (tf, true)
                } else {
                    (tt, false)
                }
            }
            (Some((tf, _)), None) => (tf, true),
            (None, Some((tt, _, _))) => (tt, false),
            (None, None) => {
                panic!(
                    "simulation stalled: {} active flows have zero rate and no timers pending",
                    self.live_flows
                );
            }
        };

        self.advance_to(event_time);

        if is_flow {
            let id = flow_done.expect("flow event chosen").1;
            if !self.reference_mode {
                // The live entry we peeked above is still the heap head.
                self.completions.pop();
            }
            let flow = self.remove_flow(id).expect("flow exists");
            self.retire_flow_accounting(&flow);
            self.trace_flow(
                id,
                &flow.spec,
                TraceEventKind::Completed {
                    bytes: flow.spec.bytes(),
                },
            );
            self.profile.events += 1;
            self.profile.flow_completions += 1;
            self.rates_stale = true;
            Some(Event::FlowCompleted {
                id: FlowId(id),
                tag: flow.spec.tag,
                outcome: FlowOutcome::Delivered,
            })
        } else {
            let Reverse((_, id, key)) = self.timers.pop().expect("timer event chosen");
            self.pending_timers.remove(&id);
            self.profile.events += 1;
            self.profile.timer_fires += 1;
            Some(Event::Timer {
                id: TimerId(id),
                key,
            })
        }
    }

    /// Moves time forward, progressing flows and recording monitor usage.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        debug_assert!(!self.rates_stale, "advance with stale rates");
        let dt = (t - self.now).as_secs();
        if dt > 0.0 {
            let start = self.now.as_secs();
            let end = t.as_secs();
            if self.reference_mode {
                for f in self.flows.iter_mut().flatten() {
                    if f.rate > 0.0 {
                        f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    }
                }
                // Borrow juggling: record after updating.
                for f in self.flows.iter().flatten() {
                    if f.rate > 0.0 {
                        for &(node, kind) in &f.spec.constraints {
                            self.monitor
                                .record(start, end, f.rate, node, kind, f.spec.tag);
                        }
                    }
                }
                self.last_materialize = t;
            } else {
                // Per-flow state is untouched (remaining is lazy); the
                // monitor records straight from the aggregate class
                // tables — O(nodes) per event instead of O(flows).
                for node in 0..self.node_caps.len() {
                    for kind in ResourceKind::ALL {
                        for tag in Traffic::ALL {
                            let rate = self.class_rate_tbl[self.cell(node, kind, tag)];
                            if rate > 0.0 {
                                self.monitor.record(start, end, rate, node, kind, tag);
                            }
                        }
                    }
                }
            }
        }
        self.now = t;
    }

    /// Recomputes max–min fair rates if the flow set changed.
    fn refresh_rates(&mut self) {
        if !self.rates_stale {
            return;
        }
        if self.reference_mode {
            let flow_resources: Vec<Vec<usize>> = self
                .flows
                .iter()
                .flatten()
                .map(|f| f.cells().iter().map(|&c| c as usize).collect())
                .collect();
            let rates = reference::allocate_rates(&self.caps, &flow_resources);
            for (f, rate) in self.flows.iter_mut().flatten().zip(rates) {
                f.rate = rate;
            }
            self.rates_stale = false;
            return;
        }

        // Solve over flow groups, not flows: the group-level CSR is
        // O(distinct shapes) long (≤ nodes² for network flows) however
        // many flows are live, and group membership is maintained
        // incrementally at admission/retirement.
        self.grp_offsets.clear();
        self.grp_targets.clear();
        self.grp_weights.clear();
        self.grp_offsets.push(0);
        self.grp_row.resize(self.groups.len(), u32::MAX);
        for (g, grp) in self.groups.iter().enumerate() {
            if grp.count == 0 {
                continue;
            }
            self.grp_row[g] = self.grp_weights.len() as u32;
            self.grp_targets
                .extend_from_slice(&grp.cells[..grp.ncells as usize]);
            self.grp_offsets.push(self.grp_targets.len() as u32);
            self.grp_weights.push(grp.count);
        }
        self.grp_rates.resize(self.grp_weights.len(), 0.0);
        self.solver.solve_weighted_into(
            &self.caps,
            &self.grp_offsets,
            &self.grp_targets,
            &self.grp_weights,
            &mut self.grp_rates,
        );

        // One slab pass: materialize each flow's remaining up to now at
        // the (constant) old rate that applied since the last solve, then
        // apply its group's new rate — updating class-rate cells and
        // re-stamping completion predictions only for flows whose rate
        // actually changed (the changed-set), while also collecting every
        // live prediction in case the heap is rebuilt below.
        let dt = (self.now - self.last_materialize).as_secs();
        self.last_materialize = self.now;
        let now = self.now;
        let nflows = self.live_flows;
        let Self {
            flows,
            slot_ids,
            class_rate_tbl,
            grp_row,
            grp_rates,
            scr_entries,
            scr_changed,
            completions,
            trace,
            profile,
            ..
        } = self;
        scr_entries.clear();
        scr_changed.clear();
        for (slot, f) in flows.iter_mut().enumerate() {
            let Some(f) = f else { continue };
            if dt > 0.0 && f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            let new_rate = grp_rates[grp_row[f.group as usize] as usize];
            let changed = new_rate.to_bits() != f.rate.to_bits();
            if changed {
                let tag = f.spec.tag.index();
                for &c in &f.cells[..f.ncells as usize] {
                    class_rate_tbl[c as usize * TAGS + tag] += new_rate - f.rate;
                }
                f.rate = new_rate;
                if let Some(tr) = trace.as_mut() {
                    let (src, dst) = f.spec.endpoints();
                    tr.push(TraceEvent {
                        at_secs: now.as_secs(),
                        flow: slot_ids[slot],
                        tag: f.spec.tag,
                        src,
                        dst,
                        kind: TraceEventKind::RateChanged { rate: new_rate },
                    });
                }
            }
            if changed || !f.has_entry {
                f.epoch += 1;
                let pred = if f.remaining <= EPS_BYTES {
                    Some(now)
                } else if f.rate > 0.0 {
                    Some(now + SimTime::from_secs(f.remaining / f.rate))
                } else {
                    None // starved; no completion at current rates
                };
                match pred {
                    Some(t) => {
                        f.pred = t;
                        f.has_entry = true;
                        scr_changed.push(Reverse((t, slot_ids[slot], f.epoch)));
                    }
                    None => f.has_entry = false,
                }
            }
            if f.has_entry {
                scr_entries.push(Reverse((f.pred, slot_ids[slot], f.epoch)));
            }
        }

        // Heap maintenance. When a solve moves most predictions (the
        // common case under symmetric load), F pushes into a heap full of
        // newly-dead entries cost O(F log F) and leave the garbage behind;
        // a wholesale O(F) heapify from the live predictions collected
        // above is cheaper and leaves the heap exactly `live_flows` long.
        // The same rebuild bounds lazy-invalidation garbage in the
        // few-changes regime.
        if scr_changed.len() * 2 >= nflows.max(1)
            || completions.len() + scr_changed.len() > 4 * nflows + 64
        {
            // Heapify consumes the entry buffer; recycle the old heap's
            // allocation as the next solve's scratch.
            let old = std::mem::replace(completions, BinaryHeap::from(std::mem::take(scr_entries)));
            *scr_entries = old.into_vec();
            profile.heap_rebuilds += 1;
        } else {
            for e in scr_changed.drain(..) {
                completions.push(e);
            }
        }

        self.profile.solves += 1;
        if self.profile.solves.is_multiple_of(TABLE_REBUILD_PERIOD) {
            // Bound incremental float drift with an exact rebuild.
            self.class_rate_tbl.fill(0.0);
            for f in self.flows.iter().flatten() {
                let tag = f.spec.tag.index();
                for &c in f.cells() {
                    self.class_rate_tbl[c as usize * TAGS + tag] += f.rate;
                }
            }
        }
        self.rates_stale = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_sim() -> Simulator {
        Simulator::new(SimConfig::uniform(2, NodeCaps::symmetric(100.0, 50.0)))
    }

    #[test]
    fn single_flow_finishes_at_capacity_rate() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        let ev = sim.next_event().unwrap();
        assert_eq!(
            ev,
            Event::FlowCompleted {
                id: f,
                tag: Traffic::Repair,
                outcome: FlowOutcome::Delivered,
            }
        );
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Foreground));
        sim.refresh();
        assert_eq!(sim.flow_rate(a), Some(50.0));
        assert_eq!(sim.flow_rate(b), Some(50.0));
        // First completes at t=2 (ties: lowest id first).
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == a));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        // The survivor speeds up to 100 and finishes immediately after.
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == b));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disk_flows_do_not_contend_with_network() {
        let mut sim = two_node_sim();
        let n = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let d = sim.start_flow(FlowSpec::disk_read(0, 50, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(n), Some(100.0));
        assert_eq!(sim.flow_rate(d), Some(50.0));
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 300, Traffic::Repair)); // done at t=3
        let t = sim.schedule_in(1.0, 42);
        let ev = sim.next_event().unwrap();
        assert_eq!(ev, Event::Timer { id: t, key: 42 });
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { .. }));
        assert!((sim.now().as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = two_node_sim();
        let t = sim.schedule_in(1.0, 1);
        sim.schedule_in(2.0, 2);
        sim.cancel_timer(t);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::Timer { key: 2, .. }));
        assert_eq!(sim.next_event(), None);
        // The cancelled id was discarded along the way; nothing lingers.
        assert!(sim.cancelled_timers.is_empty());
        assert!(sim.pending_timers.is_empty());
    }

    #[test]
    fn cancelling_fired_or_unknown_timers_leaves_no_residue() {
        let mut sim = two_node_sim();
        let t = sim.schedule_in(0.5, 9);
        let ev = sim.next_event().unwrap();
        assert_eq!(ev, Event::Timer { id: t, key: 9 });
        // Fire-then-cancel: the id is gone, so nothing must be retained.
        sim.cancel_timer(t);
        assert!(sim.cancelled_timers.is_empty());
        // Cancelling a never-existing timer is equally inert.
        sim.cancel_timer(TimerId(12345));
        assert!(sim.cancelled_timers.is_empty());
        assert!(sim.pending_timers.is_empty());
    }

    #[test]
    fn cancel_flow_returns_remaining() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.schedule_in(0.5, 0);
        let _ = sim.next_event();
        let left = sim.cancel_flow(f).unwrap();
        assert!((left - 50.0).abs() < 1e-9);
        assert_eq!(sim.cancel_flow(f), None);
    }

    #[test]
    fn class_rate_and_residual_capacity() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Foreground));
        sim.refresh();
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Foreground),
            100.0
        );
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Repair),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(0, ResourceKind::Uplink, &[Traffic::Foreground]),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(1, ResourceKind::Uplink, &[Traffic::Foreground]),
            100.0
        );
    }

    #[test]
    #[should_panic(expected = "rates are stale")]
    fn stale_rate_reads_panic() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let _ = sim.flow_rate(f);
    }

    #[test]
    fn class_flow_count_tracks_admission_and_retirement() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            2
        );
        sim.cancel_flow(f);
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        while sim.next_event().is_some() {}
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            0
        );
    }

    #[test]
    fn duplicate_constraints_are_deduped_at_admission() {
        // Regression: a spec listing the same (node, kind) twice used to
        // double-count load in the solver (halving the flow's rate) and
        // double-record monitor bytes.
        let mut sim = two_node_sim();
        let spec = FlowSpec {
            bytes: 200.0,
            constraints: vec![
                (0, ResourceKind::Uplink),
                (0, ResourceKind::Uplink),
                (1, ResourceKind::Downlink),
            ],
            tag: Traffic::Repair,
        };
        let f = sim.start_flow(spec);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        while sim.next_event().is_some() {}
        let moved = sim
            .monitor()
            .total_bytes(0, ResourceKind::Uplink, Traffic::Repair);
        assert!((moved - 200.0).abs() < 1e-6, "double-recorded: {moved}");
    }

    #[test]
    fn slots_are_reused_after_retirement() {
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(1, 0, 100, Traffic::Repair));
        sim.cancel_flow(a);
        // The freed slot is recycled; ids stay unique and resolvable.
        let c = sim.start_flow(FlowSpec::network(0, 1, 50, Traffic::Repair));
        assert_eq!(sim.active_flows(), 2);
        assert_eq!(sim.flows.len(), 2, "slab should not grow past peak");
        sim.refresh();
        assert_eq!(sim.flow_rate(a), None);
        assert_eq!(sim.flow_rate(b), Some(100.0));
        assert_eq!(sim.flow_rate(c), Some(100.0));
        let mut done = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let Event::FlowCompleted { id, .. } = ev {
                done.push(id);
            }
        }
        assert_eq!(done, vec![c, b]);
    }

    #[test]
    fn cancel_flow_releases_capacity_and_leaves_no_stale_heap_entry() {
        // Regression (indexed engine): cancelling a mid-transfer flow must
        // (a) release its share of node capacity immediately, (b) re-solve
        // rates for flows it shared resources with, and (c) leave no live
        // completion-heap entry that could later surface a phantom event.
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 400, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 400, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event(); // timer at t=1; both flows at 50 B/s
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        let left = sim.cancel_flow(a).unwrap();
        assert!((left - 350.0).abs() < 1e-9, "a moved 50 bytes: {left}");
        // (a)+(b): the survivor's rate doubles as soon as rates refresh.
        sim.refresh();
        assert_eq!(sim.flow_rate(b), Some(100.0));
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Repair),
            100.0
        );
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        // (c): the only remaining event is b's completion — 350 bytes at
        // 100 B/s from t=1 — and a's stale heap entry never surfaces.
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == b));
        assert!((sim.now().as_secs() - 4.5).abs() < 1e-9);
        assert_eq!(sim.next_event(), None);
        assert!(sim.completions.is_empty() || sim.reference_mode);
    }

    #[test]
    fn fail_node_aborts_flows_and_releases_capacity() {
        let mut sim = Simulator::new(SimConfig::uniform(3, NodeCaps::symmetric(100.0, 50.0)));
        let doomed = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        let doomed2 = sim.start_flow(FlowSpec::network(2, 1, 1000, Traffic::Repair));
        let survivor = sim.start_flow(FlowSpec::network(2, 0, 100, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event();
        sim.fail_node(1);
        assert!(sim.is_node_failed(1));
        // Aborts are delivered in flow-id order, at the current time.
        let ev = sim.next_event().unwrap();
        assert_eq!(
            ev,
            Event::FlowCompleted {
                id: doomed,
                tag: Traffic::Repair,
                outcome: FlowOutcome::Aborted,
            }
        );
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == doomed2
        ));
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        // Capacity the doomed flows held is released for the survivor.
        sim.refresh();
        assert_eq!(sim.flow_rate(doomed), None);
        assert_eq!(sim.flow_rate(survivor), Some(100.0));
        // New flows touching the failed node abort on admission...
        let refused = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == refused
        ));
        // ...until the node recovers.
        sim.recover_node(1);
        let ok = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        let mut delivered = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let Event::FlowCompleted {
                id,
                outcome: FlowOutcome::Delivered,
                ..
            } = ev
            {
                delivered.push(id);
            }
        }
        assert!(delivered.contains(&ok));
        // The monitor accounted the killed flows' unsent bytes.
        assert!(sim.monitor().total_aborted_bytes() > 0.0);
    }

    #[test]
    fn fail_node_is_idempotent_and_double_failure_aborts_once() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.fail_node(1);
        sim.fail_node(1);
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == f
        ));
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn scale_node_caps_rerates_flows_from_base() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        sim.scale_node_caps(0, 0.25, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(25.0));
        // Scaling is relative to the configured base, not compounding.
        sim.scale_node_caps(0, 0.5, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(50.0));
        sim.scale_node_caps(0, 1.0, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        assert_eq!(sim.capacity(0, ResourceKind::Uplink), 100.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 0, Traffic::Repair));
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == f));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn monitor_accounts_transferred_bytes() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        while sim.next_event().is_some() {}
        let m = sim.monitor();
        assert!((m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert!((m.total_bytes(1, ResourceKind::Downlink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert_eq!(m.total_bytes(1, ResourceKind::Uplink, Traffic::Repair), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flow_to_unknown_node_rejected() {
        let mut sim = two_node_sim();
        let _ = sim.start_flow(FlowSpec::network(0, 9, 1, Traffic::Repair));
    }

    #[test]
    fn deterministic_event_order_across_runs() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            let mut log = Vec::new();
            for i in 0..3u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    3,
                    50 + i * 10,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(2.0, 7);
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_admission_equals_sequential() {
        let specs =
            || (0..5u64).map(|i| FlowSpec::network(i as usize % 3, 3, 40 + i * 7, Traffic::Repair));
        let drain = |sim: &mut Simulator| {
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        let mut batched = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
        let ids = batched.start_flows(specs());
        assert_eq!(ids.len(), 5);
        let mut sequential = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
        for s in specs() {
            sequential.start_flow(s);
        }
        assert_eq!(drain(&mut batched), drain(&mut sequential));
    }

    #[test]
    fn trace_records_full_flow_lifecycle() {
        let mut sim = two_node_sim();
        sim.set_trace_enabled(true);
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Foreground));
        while sim.next_event().is_some() {}
        let events = sim.trace().unwrap().events().to_vec();
        let of =
            |id: FlowId| -> Vec<&TraceEvent> { events.iter().filter(|e| e.flow == id.0).collect() };
        // a: admitted at 0, rated 50 (shared), re-rated 100 when b leaves
        // ... except a (lower id) finishes first at the tie; both deliver.
        let ea = of(a);
        assert!(matches!(ea[0].kind, TraceEventKind::Admitted { bytes } if bytes == 100.0));
        assert_eq!(ea[0].src, 0);
        assert_eq!(ea[0].dst, 1);
        assert!(ea
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::RateChanged { rate } if rate == 50.0)));
        assert!(matches!(
            ea.last().unwrap().kind,
            TraceEventKind::Completed { bytes } if bytes == 100.0
        ));
        let eb = of(b);
        assert_eq!(eb.first().unwrap().tag, Traffic::Foreground);
        assert!(matches!(
            eb.last().unwrap().kind,
            TraceEventKind::Completed { .. }
        ));
        // The survivor was re-rated to full capacity after a left.
        assert!(eb
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::RateChanged { rate } if rate == 100.0)));
    }

    #[test]
    fn trace_labels_abort_causes() {
        let mut sim = two_node_sim();
        sim.set_trace_enabled(true);
        let killed = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        let cancelled = sim.start_flow(FlowSpec::network(1, 0, 1000, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event();
        sim.cancel_flow(cancelled);
        sim.fail_node(1);
        // Admission against the failed node also traces an abort.
        let refused = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        while sim.next_event().is_some() {}
        let events = sim.take_trace().unwrap().into_events();
        let cause_of = |id: FlowId| {
            events.iter().find_map(|e| match e.kind {
                TraceEventKind::Aborted { cause, .. } if e.flow == id.0 => Some(cause),
                _ => None,
            })
        };
        assert_eq!(cause_of(killed), Some(AbortCause::NodeFailure));
        assert_eq!(cause_of(cancelled), Some(AbortCause::Cancelled));
        assert_eq!(cause_of(refused), Some(AbortCause::NodeFailure));
        // Aborted events carry the undelivered remainder.
        let killed_remaining = events
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Aborted { remaining, .. } if e.flow == killed.0 => Some(remaining),
                _ => None,
            })
            .unwrap();
        // `killed` ran alone on its links at 100 B/s for 1 s.
        assert!((killed_remaining - 900.0).abs() < 1e-9);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let run = |traced: bool| {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.set_trace_enabled(traced);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.7, 3);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn traced_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.set_trace_enabled(true);
            for i in 0..3u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    3,
                    50 + i * 10,
                    Traffic::Repair,
                ));
            }
            while sim.next_event().is_some() {}
            sim.take_trace().unwrap().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_is_off_by_default_and_droppable() {
        let mut sim = two_node_sim();
        assert!(sim.trace().is_none());
        sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        while sim.next_event().is_some() {}
        assert!(sim.take_trace().is_none());
        // Enabling then disabling drops recorded events.
        sim.set_trace_enabled(true);
        sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        sim.set_trace_enabled(false);
        assert!(sim.trace().is_none());
    }

    #[test]
    fn profile_counts_events_solves_and_timer_churn() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.start_flow(FlowSpec::network(1, 0, 100, Traffic::Repair));
        let t = sim.schedule_in(0.1, 1);
        sim.schedule_in(0.2, 2);
        sim.cancel_timer(t);
        sim.cancel_flow(f);
        let mut events = 0;
        while sim.next_event().is_some() {
            events += 1;
        }
        let p = sim.profile();
        assert_eq!(p.events, events);
        assert_eq!(p.flow_completions, 1);
        assert_eq!(p.timer_fires, 1);
        assert_eq!(p.timers_scheduled, 2);
        assert_eq!(p.timers_cancelled, 1);
        assert!(p.solves >= 1, "at least one rate solve happened");
        assert!(p.solver_rounds >= p.solves, "each solve runs >= 1 round");
    }

    #[test]
    fn profile_counts_aborts() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.fail_node(1);
        while sim.next_event().is_some() {}
        let p = sim.profile();
        assert_eq!(p.flow_aborts, 1);
        assert_eq!(p.flow_completions, 0);
    }

    #[test]
    fn reference_engine_produces_the_same_log() {
        let run = |reference: bool| {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.use_reference_engine(reference);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.7, 3);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs()));
            }
            log
        };
        let fast = run(false);
        let slow = run(true);
        assert_eq!(fast.len(), slow.len());
        for ((ea, ta), (eb, tb)) in fast.iter().zip(&slow) {
            assert_eq!(ea, eb);
            assert!((ta - tb).abs() < 1e-9, "{ta} vs {tb}");
        }
    }
}
