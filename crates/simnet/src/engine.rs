//! The discrete-event engine.
//!
//! The default ("indexed") engine is built for trace-scale event
//! throughput, and its hot path is *group-level*: no per-event cost is
//! proportional to the number of live flows.
//!
//! - rates come from the [`IncrementalSolver`]: flow mutations seed a
//!   dirty-resource set, and each solve re-runs progressive filling only
//!   over the contention components reachable from the seeds, bit-identical
//!   to a full solve (DESIGN.md §3.10);
//! - flows live in a slab (dense slot vector + free list + id→slot map);
//!   each flow belongs to a *flow group* (its exact resource-cell
//!   sequence), and all per-event bookkeeping — progress, rates, class
//!   tables, completion predictions — happens per group, not per flow;
//! - per-group progress is a cumulative byte counter (`done`, anchored at
//!   the last rate change); each member carries an immutable completion
//!   `target` on that counter, so members complete in target order and the
//!   whole group needs just one entry (its earliest member) in the global
//!   completion heap;
//! - per-(node, resource, class) aggregate rate and flow-count tables are
//!   maintained incrementally, so [`Simulator::class_rate`],
//!   [`Simulator::residual_capacity`] and [`Simulator::class_flow_count`]
//!   are O(1) lookups (and take `&self`); the monitor records from a
//!   maintained list of *active* cells, so advancing time is O(busy cells),
//!   not O(nodes);
//! - the earliest completion comes from a lazy-invalidation binary heap of
//!   per-group predictions, re-pushed only for groups touched by the last
//!   solve; when a solve moves most predictions at once the heap is
//!   rebuilt wholesale (O(G) heapify instead of G pushes into a heap full
//!   of dead entries).
//!
//! [`Simulator::use_reference_engine`] switches to the original
//! full-rescan implementation (reference solver, linear completion scan,
//! per-flow bookkeeping). It exists as the oracle for the differential
//! test suite and as the baseline for the simulator-throughput benchmark.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use crate::flow::{Flow, FlowId, FlowOutcome, FlowSpec, TimerId, MAX_CONSTRAINTS};
use crate::maxmin::{reference, IncrementalSolver, MaxMinSolver};
use crate::monitor::Monitor;
use crate::node::{NodeCaps, NodeId, ResourceKind, Traffic};
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{AbortCause, EngineProfile, TraceEvent, TraceEventKind, TraceSink};

/// Bytes below which a flow counts as finished (guards float rounding).
const EPS_BYTES: f64 = 1e-6;

/// Full class-rate-table rebuilds happen every this many solves, bounding
/// the drift incremental `+=`/`-=` updates can accumulate.
const TABLE_REBUILD_PERIOD: u64 = 1024;

/// Number of resource kinds per node (the flattened-table stride).
const KINDS: usize = 4;
/// Number of traffic classes (the flattened-table stride).
const TAGS: usize = 3;

/// A *flow group*: all active flows sharing one exact resource-cell
/// sequence. Max–min fairness gives every member the same rate and
/// freezes them in the same progressive-filling round, so the solver can
/// price the whole group at once — a cluster has O(nodes²) distinct
/// shapes no matter how many flows are live.
///
/// In the indexed engine the group is also the unit of progress tracking:
/// `done` counts the bytes every member has moved since the group's
/// creation (materialized lazily at `anchor`; extrapolate with `rate` for
/// later instants), each member stores an immutable completion *target* on
/// that counter, and the group keeps exactly one entry — its
/// earliest-finishing member — in the global completion heap.
#[derive(Debug, Clone)]
struct FlowGroup {
    cells: [u32; MAX_CONSTRAINTS],
    ncells: u8,
    /// Number of member flows; 0 means the group slot is free.
    count: u32,
    /// Members per traffic class (class-table bookkeeping; sums to
    /// `count`).
    tag_counts: [u32; TAGS],
    /// Current per-member max–min rate (indexed mode).
    rate: f64,
    /// Cumulative bytes each member has moved, accurate as of `anchor`.
    done: f64,
    /// The time `done` was last materialized (the last rate change).
    anchor: SimTime,
    /// Bumped whenever the group's completion-heap entry is re-stamped;
    /// stale entries are detected by epoch mismatch.
    epoch: u64,
    /// Whether a live heap entry exists (all-starved groups have none).
    has_entry: bool,
    /// Flow id of the entry's member (the group's earliest finisher).
    head: u64,
    /// Predicted completion time of the entry.
    pred: SimTime,
    /// Whether the group sits in the engine's touched list awaiting
    /// prediction maintenance at the next solve.
    touched: bool,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-node resource capacities.
    pub nodes: Vec<NodeCaps>,
    /// Length of the bandwidth-monitor windows, in seconds (the paper
    /// analyses 15 s windows).
    pub monitor_window_secs: f64,
    /// Optional rack/spine fabric. `None` (the default) models the
    /// historical rackless cluster: only per-node resources constrain
    /// flows. When set, cross-rack flows are additionally constrained by
    /// ToR and spine link resources (see [`Topology`]).
    pub topology: Option<Topology>,
}

impl SimConfig {
    /// `count` identical nodes with the default 15 s monitor window.
    ///
    /// # Examples
    ///
    /// ```
    /// use chameleon_simnet::{NodeCaps, SimConfig};
    /// let cfg = SimConfig::uniform(20, NodeCaps::default());
    /// assert_eq!(cfg.nodes.len(), 20);
    /// ```
    pub fn uniform(count: usize, caps: NodeCaps) -> Self {
        SimConfig {
            nodes: vec![caps; count],
            monitor_window_secs: 15.0,
            topology: None,
        }
    }

    /// Returns the configuration with the given fabric attached.
    ///
    /// # Panics
    ///
    /// Panics if the topology's node count disagrees with the
    /// configuration's.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.node_count(),
            self.nodes.len(),
            "topology describes {} nodes but the config has {}",
            topology.node_count(),
            self.nodes.len()
        );
        self.topology = Some(topology);
        self
    }
}

/// Rates have not been re-solved since the last flow-set mutation.
///
/// Returned by [`Simulator::check_fresh`]; the panicking read paths
/// ([`Simulator::flow_rate`], [`Simulator::class_rate`],
/// [`Simulator::residual_capacity`]) raise the same condition as an
/// assertion. Fix by calling [`Simulator::refresh`] (or letting
/// [`Simulator::next_event`] run) before reading rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRatesError;

impl core::fmt::Display for StaleRatesError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(
            "rates are stale: call refresh() (or next_event()) after \
             mutating flows before reading rates",
        )
    }
}

impl std::error::Error for StaleRatesError {}

/// An observable simulation event, returned by [`Simulator::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow ended — it either delivered its final byte or was aborted by
    /// a node failure (see the `outcome` field).
    FlowCompleted {
        /// The finished flow.
        id: FlowId,
        /// Its traffic class.
        tag: Traffic,
        /// Whether the flow delivered all of its bytes or was aborted.
        outcome: FlowOutcome,
    },
    /// A timer fired.
    Timer {
        /// The timer's identity.
        id: TimerId,
        /// The caller-supplied dispatch key.
        key: u64,
    },
}

/// The flow-level cluster simulator.
///
/// Drivers start flows and timers, then repeatedly call
/// [`Simulator::next_event`], reacting to completions. Between events all
/// active flows progress at their max–min fair rates.
///
/// Mutating the flow set ([`Simulator::start_flow`],
/// [`Simulator::cancel_flow`]) marks the rates stale; they are re-solved
/// lazily by [`Simulator::next_event`] or an explicit
/// [`Simulator::refresh`]. The `&self` rate read paths
/// ([`Simulator::flow_rate`], [`Simulator::class_rate`],
/// [`Simulator::residual_capacity`]) require fresh rates and panic
/// otherwise — call `refresh()` first when probing between mutations.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    node_caps: Vec<NodeCaps>,
    /// The capacities the simulator was configured with, before any
    /// [`Simulator::scale_node_caps`] fault scaling.
    base_caps: Vec<NodeCaps>,
    /// Nodes currently failed ([`Simulator::fail_node`]): new flows that
    /// touch them abort on admission, existing ones were killed.
    failed_nodes: Vec<bool>,
    /// Abort notifications queued by `fail_node`, delivered (in flow-id
    /// order) by `next_event` ahead of any heap event, without advancing
    /// time.
    pending_aborts: VecDeque<(u64, Traffic)>,
    /// Flattened capacities: `caps[node * 4 + kind]` for node resources,
    /// followed by `links` shared link capacities starting at `link_base`.
    caps: Vec<f64>,
    /// The rack/spine fabric, if the simulation has one.
    topology: Option<Topology>,
    /// First link resource index (`nodes × 4`); node cells live below it.
    link_base: usize,
    /// Number of shared link resources (0 without a topology).
    links: usize,
    /// The flow slab: `None` slots are free (listed in `free_slots`).
    flows: Vec<Option<Flow>>,
    /// The flow id occupying each slot (stale for free slots).
    slot_ids: Vec<u64>,
    /// Free-slot stack; reuse is LIFO and therefore deterministic.
    free_slots: Vec<u32>,
    /// Flow id → slab slot, the O(1) public-lookup path.
    id_to_slot: HashMap<u64, u32>,
    live_flows: usize,
    next_flow_id: u64,
    next_timer_id: u64,
    /// Min-heap of (fire time, timer id, key).
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Ids of pending timers that have been cancelled. Only ids still in
    /// `pending_timers` are ever inserted, so the set cannot leak ids of
    /// timers that already fired.
    cancelled_timers: HashSet<u64>,
    /// Ids of scheduled timers that have not yet fired or been discarded.
    pending_timers: HashSet<u64>,
    rates_stale: bool,
    monitor: Monitor,
    /// Opt-in flow-lifecycle trace ([`Simulator::set_trace_enabled`]);
    /// `None` (the default) makes every hook a branch-and-skip.
    trace: Option<TraceSink>,
    /// Self-profiling counters, maintained unconditionally.
    profile: EngineProfile,

    // --- Indexed-engine state ---
    /// Whether to run the original full-rescan engine instead.
    reference_mode: bool,
    /// Aggregate rate per (node, kind, tag) cell, maintained incrementally
    /// (indexed mode only).
    class_rate_tbl: Vec<f64>,
    /// Active-flow count per (node, kind, tag) cell (maintained in both
    /// modes; integer, exact).
    class_count_tbl: Vec<u32>,
    /// Lazy-invalidation min-heap of per-group completion predictions:
    /// (predicted completion, head flow id, group epoch).
    completions: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// The time `Flow::remaining` values are accurate as of (reference
    /// mode only; the indexed engine anchors progress per group).
    last_materialize: SimTime,
    solver: IncrementalSolver,
    /// Flow groups (slab; `count == 0` slots are free and listed in
    /// `free_groups`). Maintained in both engine modes, solved against in
    /// indexed mode.
    groups: Vec<FlowGroup>,
    free_groups: Vec<u32>,
    /// Cell sequence → group index (unused key slots are `u32::MAX`).
    group_ids: HashMap<[u32; MAX_CONSTRAINTS], u32>,
    /// Per-group min-heaps of members by (completion-target bits, flow
    /// id); parallel to `groups`, cleared when a slot frees. Dead members
    /// linger lazily and are discarded when they surface at the head.
    grp_members: Vec<BinaryHeap<Reverse<(u64, u64)>>>,
    /// Groups whose membership or rate changed since the last solve —
    /// exactly the set whose heap entry needs re-stamping.
    touched_groups: Vec<u32>,
    /// Rate-change output of the last incremental solve (scratch).
    scr_changed: Vec<(u32, f64)>,
    /// Entry buffer recycled across wholesale heap rebuilds.
    scr_entries: Vec<Reverse<(SimTime, u64, u64)>>,
    /// Member-id buffer for per-flow trace emission on group rate changes.
    scr_trace_ids: Vec<u64>,
    /// Flattened (node, kind, tag) cell indices with at least one active
    /// flow — what `advance_to` records to the monitor, so idle cells cost
    /// nothing at 1000-node scale.
    active_cells: Vec<u32>,
    /// Position of each cell in `active_cells` (`u32::MAX` when inactive).
    active_pos: Vec<u32>,
}

// Send-bound audit: whole simulations are executed on worker threads by the
// parallel experiment grid in `chameleon-bench`; the simulator must stay
// free of thread-bound state (Rc, RefCell, raw pointers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator>();
    assert_send_sync::<Monitor>();
};

impl Simulator {
    /// Creates a simulator at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no nodes.
    pub fn new(config: SimConfig) -> Self {
        assert!(!config.nodes.is_empty(), "at least one node required");
        if let Some(t) = &config.topology {
            assert_eq!(
                t.node_count(),
                config.nodes.len(),
                "topology describes {} nodes but the config has {}",
                t.node_count(),
                config.nodes.len()
            );
        }
        let link_base = config.nodes.len() * KINDS;
        let links = config.topology.as_ref().map_or(0, |t| t.link_count());
        let mut caps: Vec<f64> = config
            .nodes
            .iter()
            .flat_map(|n| ResourceKind::ALL.map(|k| n.capacity(k)))
            .collect();
        if let Some(t) = &config.topology {
            caps.extend((0..links).map(|l| t.link_capacity(l)));
        }
        let monitor = Monitor::new(config.nodes.len(), links, config.monitor_window_secs);
        let cells = (config.nodes.len() * KINDS + links) * TAGS;
        let mut solver = IncrementalSolver::new();
        solver.set_capacities(&caps);
        if links > 0 {
            // Link resources are *soft* for the incremental dirty-set
            // closure: a link with slack joins a sub-problem (with its
            // out-of-closure allocation deducted) but does not conduct
            // contention across racks, so rack-local churn stays
            // rack-local. Saturated links conduct until slack returns.
            solver.set_soft_base(link_base);
        }
        Simulator {
            now: SimTime::ZERO,
            caps,
            topology: config.topology,
            link_base,
            links,
            base_caps: config.nodes.clone(),
            failed_nodes: vec![false; config.nodes.len()],
            pending_aborts: VecDeque::new(),
            node_caps: config.nodes,
            flows: Vec::new(),
            slot_ids: Vec::new(),
            free_slots: Vec::new(),
            id_to_slot: HashMap::new(),
            live_flows: 0,
            next_flow_id: 0,
            next_timer_id: 0,
            timers: BinaryHeap::new(),
            cancelled_timers: HashSet::new(),
            pending_timers: HashSet::new(),
            rates_stale: true,
            monitor,
            trace: None,
            profile: EngineProfile::default(),
            reference_mode: false,
            class_rate_tbl: vec![0.0; cells],
            class_count_tbl: vec![0; cells],
            completions: BinaryHeap::new(),
            last_materialize: SimTime::ZERO,
            solver,
            groups: Vec::new(),
            free_groups: Vec::new(),
            group_ids: HashMap::new(),
            grp_members: Vec::new(),
            touched_groups: Vec::new(),
            scr_changed: Vec::new(),
            scr_entries: Vec::new(),
            scr_trace_ids: Vec::new(),
            active_cells: Vec::new(),
            active_pos: vec![u32::MAX; cells],
        }
    }

    /// Switches between the indexed engine (default, `false`) and the
    /// original full-rescan reference engine.
    ///
    /// The reference engine exists for differential testing and as the
    /// simulator-throughput benchmark baseline; both engines produce the
    /// same event log.
    ///
    /// # Panics
    ///
    /// Panics if flows are already active — pick the engine before
    /// starting traffic.
    pub fn use_reference_engine(&mut self, on: bool) {
        assert!(
            self.live_flows == 0,
            "switch engine modes before starting flows"
        );
        self.reference_mode = on;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.node_caps.len()
    }

    /// Capacities of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_caps(&self, node: NodeId) -> NodeCaps {
        self.node_caps[node]
    }

    /// Capacity of one node resource, in bytes/s.
    pub fn capacity(&self, node: NodeId, kind: ResourceKind) -> f64 {
        self.node_caps[node].capacity(kind)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.live_flows
    }

    /// The windowed bandwidth monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Consumes the simulator, keeping only its bandwidth monitor — the
    /// post-run state experiments analyse. Dropping the flow slab, heaps,
    /// and solver scratch here lets a finished run shed its footprint while
    /// other runs of a parallel experiment grid are still in flight.
    pub fn into_monitor(self) -> Monitor {
        self.monitor
    }

    /// Enables or disables flow-lifecycle tracing.
    ///
    /// Off by default; when off, tracing costs one branch per hook site
    /// and records nothing. Enabling starts a fresh [`TraceSink`];
    /// disabling drops any recorded events. Tracing never influences the
    /// simulation — the event stream is a pure observation, so traced and
    /// untraced runs of the same spec are identical.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace = if on { Some(TraceSink::new()) } else { None };
    }

    /// The recorded flow-lifecycle trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Takes the recorded trace out of the simulator (tracing stops;
    /// re-enable with [`Simulator::set_trace_enabled`] if needed).
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// The engine's self-profiling counters (events delivered, solver
    /// invocations and rounds, heap rebuilds, timer churn).
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            solver_rounds: self.solver.total_rounds(),
            ..self.profile
        }
    }

    /// Emits one lifecycle event for a flow if tracing is on.
    fn trace_flow(&mut self, id: u64, spec: &FlowSpec, kind: TraceEventKind) {
        if let Some(tr) = self.trace.as_mut() {
            let (src, dst) = spec.endpoints();
            tr.push(TraceEvent {
                at_secs: self.now.as_secs(),
                flow: id,
                tag: spec.tag(),
                src,
                dst,
                kind,
            });
        }
    }

    fn cell(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> usize {
        (node * KINDS + kind.index()) * TAGS + tag.index()
    }

    /// Starts a flow; it begins transferring immediately.
    ///
    /// Rates are re-solved lazily, so admitting a burst of flows costs a
    /// single solve (see [`Simulator::start_flows`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec references a node out of range.
    pub fn start_flow(&mut self, mut spec: FlowSpec) -> FlowId {
        for &(node, _) in spec.constraints() {
            assert!(node < self.node_caps.len(), "node {node} out of range");
        }
        // A flow against a failed node is admitted and immediately
        // aborted: the caller gets a normal id and learns of the failure
        // through the same `FlowOutcome::Aborted` notification as a
        // mid-transfer kill, so drivers have one recovery path.
        if spec
            .constraints()
            .iter()
            .any(|&(node, _)| self.failed_nodes[node])
        {
            let id = FlowId(self.next_flow_id);
            self.next_flow_id += 1;
            self.trace_flow(
                id.0,
                &spec,
                TraceEventKind::Admitted {
                    bytes: spec.bytes(),
                },
            );
            self.trace_flow(
                id.0,
                &spec,
                TraceEventKind::Aborted {
                    cause: AbortCause::NodeFailure,
                    remaining: spec.bytes(),
                },
            );
            self.pending_aborts.push_back((id.0, spec.tag()));
            return id;
        }
        // Dedupe repeated (node, kind) pairs: a duplicate would
        // double-count the flow's load in the solver and double-record its
        // bytes in the monitor.
        let c = &mut spec.constraints;
        let mut i = 1;
        while i < c.len() {
            if c[..i].contains(&c[i]) {
                c.remove(i);
            } else {
                i += 1;
            }
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        self.trace_flow(
            id.0,
            &spec,
            TraceEventKind::Admitted {
                bytes: spec.bytes(),
            },
        );
        let mut flow = Flow::new(spec);
        // Under a topology, a transfer whose source uplink and destination
        // downlink sit in different racks also crosses shared fabric links;
        // append their cells so the solver, class tables, and monitor all
        // see the extra constraints. Same-rack (and disk-only) flows take
        // no link cells and behave exactly as in the rackless engine.
        if let Some(topo) = &self.topology {
            let src = flow
                .spec
                .constraints
                .iter()
                .find(|&&(_, k)| k == ResourceKind::Uplink)
                .map(|&(n, _)| n);
            let dst = flow
                .spec
                .constraints
                .iter()
                .find(|&&(_, k)| k == ResourceKind::Downlink)
                .map(|&(n, _)| n);
            if let (Some(s), Some(d)) = (src, dst) {
                for l in topo.path_links(s, d) {
                    flow.push_cell((self.link_base + l) as u32);
                }
            }
        }
        let tag = flow.spec.tag.index();
        for &c in flow.cells() {
            self.activate_cell(c as usize * TAGS + tag);
        }
        let g = self.join_group(&flow, tag);
        flow.group = g;
        if !self.reference_mode {
            let grp = &self.groups[g as usize];
            // The member joins mid-stream: its completion target is the
            // group's progress counter now plus its bytes. Time cannot
            // advance while rates are stale, so extrapolating at the
            // pre-solve rate is exact.
            let dt = (self.now - grp.anchor).as_secs();
            let done_now = if grp.rate > 0.0 && dt > 0.0 {
                grp.done + grp.rate * dt
            } else {
                grp.done
            };
            flow.target = done_now + flow.spec.bytes;
            self.grp_members[g as usize].push(Reverse((flow.target.to_bits(), id.0)));
            // New members share the group's current rate immediately.
            for &c in flow.cells() {
                self.class_rate_tbl[c as usize * TAGS + tag] += grp.rate;
            }
        }
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.flows[s as usize] = Some(flow);
                self.slot_ids[s as usize] = id.0;
                s
            }
            None => {
                self.flows.push(Some(flow));
                self.slot_ids.push(id.0);
                (self.flows.len() - 1) as u32
            }
        };
        self.id_to_slot.insert(id.0, slot);
        self.live_flows += 1;
        self.rates_stale = true;
        id
    }

    /// Starts a batch of flows at the current time, returning their ids in
    /// order.
    ///
    /// Admission is lazy in both engines, so the whole batch is priced by
    /// one rate solve — the entry point trace replay should use when an
    /// op fans out into several flows.
    ///
    /// # Panics
    ///
    /// Panics if any spec references a node out of range.
    pub fn start_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) -> Vec<FlowId> {
        specs.into_iter().map(|s| self.start_flow(s)).collect()
    }

    /// The group-map key for a flow: its exact cell sequence, padded with
    /// `u32::MAX`.
    fn group_key(flow: &Flow) -> [u32; MAX_CONSTRAINTS] {
        let mut key = [u32::MAX; MAX_CONSTRAINTS];
        key[..flow.ncells as usize].copy_from_slice(flow.cells());
        key
    }

    /// Marks a group for prediction maintenance at the next solve.
    fn touch_group(&mut self, g: u32) {
        let grp = &mut self.groups[g as usize];
        if !grp.touched {
            grp.touched = true;
            self.touched_groups.push(g);
        }
    }

    /// Adds a flow to the group sharing its resource-cell sequence,
    /// creating the group if it is the first member. Registers the
    /// membership change with the incremental solver (indexed mode) and
    /// marks the group touched.
    fn join_group(&mut self, flow: &Flow, tag: usize) -> u32 {
        use std::collections::hash_map::Entry;
        let (g, created) = match self.group_ids.entry(Self::group_key(flow)) {
            Entry::Occupied(e) => {
                let g = *e.get();
                let grp = &mut self.groups[g as usize];
                grp.count += 1;
                grp.tag_counts[tag] += 1;
                (g, false)
            }
            Entry::Vacant(e) => {
                let mut tag_counts = [0u32; TAGS];
                tag_counts[tag] = 1;
                let grp = FlowGroup {
                    cells: flow.cells,
                    ncells: flow.ncells,
                    count: 1,
                    tag_counts,
                    rate: 0.0,
                    done: 0.0,
                    anchor: self.now,
                    epoch: 0,
                    has_entry: false,
                    head: 0,
                    pred: SimTime::ZERO,
                    touched: false,
                };
                let g = match self.free_groups.pop() {
                    Some(g) => {
                        // Preserve the touched flag across slot reuse: the
                        // old occupant may still sit in the touched list.
                        let was_touched = self.groups[g as usize].touched;
                        self.groups[g as usize] = grp;
                        self.groups[g as usize].touched = was_touched;
                        g
                    }
                    None => {
                        self.groups.push(grp);
                        self.grp_members.push(BinaryHeap::new());
                        (self.groups.len() - 1) as u32
                    }
                };
                (*e.insert(g), true)
            }
        };
        if !self.reference_mode {
            let grp = &self.groups[g as usize];
            if created {
                self.solver
                    .insert_group(g, &grp.cells[..grp.ncells as usize], 1);
            } else {
                self.solver.set_weight(g, grp.count);
            }
        }
        self.touch_group(g);
        g
    }

    /// Removes a departed flow from its group, freeing empty groups.
    /// Registers the weight change with the incremental solver (indexed
    /// mode) and marks the group touched.
    fn leave_group(&mut self, flow: &Flow) {
        let g = flow.group as usize;
        let tag = flow.spec.tag.index();
        debug_assert!(self.groups[g].count > 0);
        debug_assert!(self.groups[g].tag_counts[tag] > 0);
        self.groups[g].count -= 1;
        self.groups[g].tag_counts[tag] -= 1;
        let count = self.groups[g].count;
        if !self.reference_mode {
            self.solver.set_weight(flow.group, count);
        }
        self.touch_group(flow.group);
        if count == 0 {
            self.group_ids.remove(&Self::group_key(flow));
            self.free_groups.push(flow.group);
            self.grp_members[g].clear();
        }
    }

    /// Detaches a flow from the slab, freeing its slot.
    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let slot = self.id_to_slot.remove(&id)?;
        let flow = self.flows[slot as usize]
            .take()
            .expect("mapped slot occupied");
        self.free_slots.push(slot);
        self.live_flows -= 1;
        Some(flow)
    }

    /// Marks a (node, kind, tag) cell as having one more active flow,
    /// adding it to the active list on the 0→1 transition.
    fn activate_cell(&mut self, ct: usize) {
        if self.class_count_tbl[ct] == 0 {
            self.active_pos[ct] = self.active_cells.len() as u32;
            self.active_cells.push(ct as u32);
        }
        self.class_count_tbl[ct] += 1;
    }

    /// Removes one active flow from a cell, swap-removing it from the
    /// active list (and zeroing any accumulated rate drift) on the 1→0
    /// transition.
    fn deactivate_cell(&mut self, ct: usize) {
        debug_assert!(self.class_count_tbl[ct] > 0);
        self.class_count_tbl[ct] -= 1;
        if self.class_count_tbl[ct] == 0 {
            self.class_rate_tbl[ct] = 0.0;
            let p = self.active_pos[ct] as usize;
            let last = self.active_cells.pop().expect("active list nonempty");
            if last as usize != ct {
                self.active_cells[p] = last;
                self.active_pos[last as usize] = p as u32;
            }
            self.active_pos[ct] = u32::MAX;
        }
    }

    /// Subtracts a departing flow from the class tables and its group.
    fn retire_flow_accounting(&mut self, flow: &Flow) {
        let tag = flow.spec.tag.index();
        let rate = if self.reference_mode {
            0.0
        } else {
            self.groups[flow.group as usize].rate
        };
        for &c in flow.cells() {
            let cell = c as usize * TAGS + tag;
            if !self.reference_mode {
                self.class_rate_tbl[cell] -= rate;
            }
            self.deactivate_cell(cell);
        }
        self.leave_group(flow);
    }

    /// `remaining` of a live flow as of `now` (lazily materialized).
    fn live_remaining(&self, flow: &Flow) -> f64 {
        if self.reference_mode {
            let dt = (self.now - self.last_materialize).as_secs();
            if flow.rate > 0.0 && dt > 0.0 {
                (flow.remaining - flow.rate * dt).max(0.0)
            } else {
                flow.remaining
            }
        } else {
            let grp = &self.groups[flow.group as usize];
            let dt = (self.now - grp.anchor).as_secs();
            let done_now = if grp.rate > 0.0 && dt > 0.0 {
                grp.done + grp.rate * dt
            } else {
                grp.done
            };
            (flow.target - done_now).max(0.0)
        }
    }

    /// Cancels a flow, returning the bytes it had left, or `None` if it has
    /// already completed (or never existed).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<f64> {
        let flow = self.remove_flow(id.0)?;
        let left = self.live_remaining(&flow);
        self.retire_flow_accounting(&flow);
        self.trace_flow(
            id.0,
            &flow.spec,
            TraceEventKind::Aborted {
                cause: AbortCause::Cancelled,
                remaining: left,
            },
        );
        self.rates_stale = true;
        Some(left)
    }

    /// Fails a node: every active flow traversing any of its resources is
    /// killed atomically (capacity is released and rates re-solve for the
    /// survivors), and each killed flow surfaces as a
    /// [`Event::FlowCompleted`] with [`FlowOutcome::Aborted`] — in flow-id
    /// order, before any further heap event, without advancing time. Until
    /// [`Simulator::recover_node`], new flows touching the node abort on
    /// admission.
    ///
    /// Failing an already-failed node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fail_node(&mut self, node: NodeId) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        if self.failed_nodes[node] {
            return;
        }
        self.failed_nodes[node] = true;
        // Collect victims in flow-id order so abort delivery (and thus
        // every downstream driver decision) is deterministic regardless of
        // slab layout.
        let mut victims: Vec<u64> = Vec::new();
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            // Only node cells (below `link_base`) identify victims; link
            // cells decode to no node.
            if f.cells()
                .iter()
                .any(|&c| (c as usize) < self.link_base && c as usize / KINDS == node)
            {
                victims.push(self.slot_ids[slot]);
            }
        }
        victims.sort_unstable();
        for id in victims {
            let flow = self.remove_flow(id).expect("victim flow exists");
            let wasted = self.live_remaining(&flow);
            self.retire_flow_accounting(&flow);
            self.monitor
                .record_abort(node, flow.spec.tag, wasted, self.now.as_secs());
            self.trace_flow(
                id,
                &flow.spec,
                TraceEventKind::Aborted {
                    cause: AbortCause::NodeFailure,
                    remaining: wasted,
                },
            );
            self.pending_aborts.push_back((id, flow.spec.tag));
            self.rates_stale = true;
        }
    }

    /// Clears a node's failed state; new flows may traverse it again.
    /// Flows killed by the failure stay dead — restarting them is the
    /// driver's job.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recover_node(&mut self, node: NodeId) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        self.failed_nodes[node] = false;
    }

    /// Whether a node is currently failed.
    pub fn is_node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes[node]
    }

    /// Re-rates a node's capacities to `base × factor` (network and disk
    /// factors applied to the capacities the simulator was built with, so
    /// repeated calls don't compound): the fault primitive behind
    /// transient slowdowns and disk degradation. All flows through the
    /// node are atomically re-rate-limited at the next solve; none are
    /// killed. Factors of `1.0` restore the configured capacities.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or either factor is not positive
    /// and finite.
    pub fn scale_node_caps(&mut self, node: NodeId, net_factor: f64, disk_factor: f64) {
        assert!(node < self.node_caps.len(), "node {node} out of range");
        let scaled = self.base_caps[node].scaled(net_factor, disk_factor);
        self.node_caps[node] = scaled;
        for kind in ResourceKind::ALL {
            let res = node * KINDS + kind.index();
            self.caps[res] = scaled.capacity(kind);
            self.solver.set_capacity(res, self.caps[res]);
        }
        self.rates_stale = true;
    }

    /// Re-solves max–min fair rates now if the flow set changed since the
    /// last solve. The `&self` read paths ([`Simulator::flow_rate`],
    /// [`Simulator::class_rate`], [`Simulator::residual_capacity`])
    /// require this; [`Simulator::next_event`] calls it implicitly.
    pub fn refresh(&mut self) {
        self.refresh_rates();
    }

    /// Checks that rates are fresh, returning a typed error instead of
    /// panicking — the fallible twin of the internal freshness assertion
    /// behind [`Simulator::flow_rate`] and friends. Drivers probing
    /// between mutations can branch on this rather than catch an unwind.
    pub fn check_fresh(&self) -> Result<(), StaleRatesError> {
        if self.rates_stale {
            Err(StaleRatesError)
        } else {
            Ok(())
        }
    }

    #[track_caller]
    fn assert_fresh(&self) {
        if self.check_fresh().is_err() {
            panic!(
                "rates are stale: call refresh() (or next_event()) after \
                 mutating flows before reading rates"
            );
        }
    }

    /// Looks up a live flow by id.
    fn flow(&self, id: u64) -> Option<&Flow> {
        self.id_to_slot.get(&id).map(|&s| {
            self.flows[s as usize]
                .as_ref()
                .expect("mapped slot occupied")
        })
    }

    /// Current max–min fair rate of a flow, in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.assert_fresh();
        self.flow(id.0).map(|f| {
            if self.reference_mode {
                f.rate
            } else {
                self.groups[f.group as usize].rate
            }
        })
    }

    /// Bytes a flow still has to transfer.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flow(id.0).map(|f| self.live_remaining(f))
    }

    /// Whether an abort notification for `id` is queued but not yet
    /// delivered. A node failure kills every flow touching the node
    /// atomically but surfaces the aborts one event at a time; a driver
    /// tearing down a whole attempt on the first abort uses this to
    /// account for sibling flows the same failure already killed
    /// (cancelling them is a no-op — they are gone from the engine).
    pub fn abort_pending(&self, id: FlowId) -> bool {
        self.pending_aborts.iter().any(|&(fid, _)| fid == id.0)
    }

    /// Instantaneous aggregate rate of one traffic class through one node
    /// resource, in bytes/s — what a bandwidth monitor daemon (NetHogs in
    /// the paper) would report right now. O(1) in the indexed engine.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn class_rate(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> f64 {
        self.assert_fresh();
        if self.reference_mode {
            self.flows
                .iter()
                .flatten()
                .filter(|f| f.spec.tag == tag)
                .filter(|f| f.spec.constraints.contains(&(node, kind)))
                .map(|f| f.rate)
                .sum()
        } else {
            self.class_rate_tbl[self.cell(node, kind, tag)].max(0.0)
        }
    }

    /// Residual (idle) bandwidth of a node resource after subtracting the
    /// given traffic classes — the quantity ChameleonEC dispatches against.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale — call [`Simulator::refresh`] first.
    pub fn residual_capacity(&self, node: NodeId, kind: ResourceKind, subtract: &[Traffic]) -> f64 {
        let cap = self.capacity(node, kind);
        let used: f64 = subtract
            .iter()
            .map(|&t| self.class_rate(node, kind, t))
            .sum();
        (cap - used).max(0.0)
    }

    /// Number of active flows of one traffic class crossing a node
    /// resource. Schedulers use this for fair-share estimates: a new flow
    /// on a saturated resource still gets roughly `capacity / (count+1)`.
    /// O(1): maintained incrementally on admission/retirement.
    pub fn class_flow_count(&self, node: NodeId, kind: ResourceKind, tag: Traffic) -> usize {
        self.class_count_tbl[self.cell(node, kind, tag)] as usize
    }

    /// The rack/spine fabric the simulation was configured with, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Number of shared link resources (0 without a topology).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Capacity of one shared link resource, in bytes/s (link indices are
    /// the [`Topology`] link ids).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_capacity(&self, link: usize) -> f64 {
        assert!(link < self.links, "link {link} out of range");
        self.caps[self.link_base + link]
    }

    /// Instantaneous aggregate rate of one traffic class through one
    /// shared link resource, in bytes/s. O(1) in the indexed engine.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale (call [`Simulator::refresh`] first) or
    /// `link` is out of range.
    pub fn link_class_rate(&self, link: usize, tag: Traffic) -> f64 {
        self.assert_fresh();
        assert!(link < self.links, "link {link} out of range");
        let cell = self.link_base + link;
        if self.reference_mode {
            self.flows
                .iter()
                .flatten()
                .filter(|f| f.spec.tag == tag)
                .filter(|f| f.cells().iter().any(|&c| c as usize == cell))
                .map(|f| f.rate)
                .sum()
        } else {
            self.class_rate_tbl[cell * TAGS + tag.index()].max(0.0)
        }
    }

    /// Residual (idle) bandwidth of a shared link after subtracting the
    /// given traffic classes — what a topology-aware tuner budgets
    /// cross-rack repair against.
    ///
    /// # Panics
    ///
    /// Panics if rates are stale or `link` is out of range.
    pub fn link_residual_capacity(&self, link: usize, subtract: &[Traffic]) -> f64 {
        let cap = self.link_capacity(link);
        let used: f64 = subtract
            .iter()
            .map(|&t| self.link_class_rate(link, t))
            .sum();
        (cap - used).max(0.0)
    }

    /// Schedules a timer to fire `delay_secs` from now, with a caller-chosen
    /// dispatch key.
    ///
    /// # Panics
    ///
    /// Panics if `delay_secs` is negative or NaN.
    pub fn schedule_in(&mut self, delay_secs: f64, key: u64) -> TimerId {
        self.schedule_at(self.now + SimTime::from_secs(delay_secs), key)
    }

    /// Schedules a timer at an absolute time (clamped to now if in the
    /// past).
    pub fn schedule_at(&mut self, at: SimTime, key: u64) -> TimerId {
        let at = at.max(self.now);
        let id = TimerId(self.next_timer_id);
        self.next_timer_id += 1;
        self.timers.push(Reverse((at, id.0, key)));
        self.pending_timers.insert(id.0);
        self.profile.timers_scheduled += 1;
        id
    }

    /// Cancels a pending timer (no effect if it already fired or never
    /// existed — stale ids are not retained).
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.pending_timers.contains(&id.0) {
            self.cancelled_timers.insert(id.0);
            self.profile.timers_cancelled += 1;
        }
    }

    /// Advances the simulation to the next event and returns it, or `None`
    /// when no flows or timers remain.
    ///
    /// # Panics
    ///
    /// Panics if active flows can never finish (all rates zero) and no
    /// timer is pending — a configuration bug that would hang a real
    /// system.
    pub fn next_event(&mut self) -> Option<Event> {
        // Queued abort notifications outrank everything: they happened at
        // the current time (when `fail_node` struck), so they are
        // delivered before any heap event and without advancing the clock.
        if let Some((id, tag)) = self.pending_aborts.pop_front() {
            self.profile.events += 1;
            self.profile.flow_aborts += 1;
            return Some(Event::FlowCompleted {
                id: FlowId(id),
                tag,
                outcome: FlowOutcome::Aborted,
            });
        }

        // Discard cancelled timers at the head.
        while let Some(Reverse((_, id, _))) = self.timers.peek() {
            if self.cancelled_timers.remove(id) {
                self.pending_timers.remove(id);
                self.timers.pop();
            } else {
                break;
            }
        }

        if self.live_flows == 0 && self.timers.is_empty() {
            return None;
        }

        self.refresh_rates();

        // Earliest flow completion (ties broken by lowest id).
        let flow_done: Option<(SimTime, u64)> = if self.reference_mode {
            let mut best: Option<(SimTime, u64)> = None;
            for (slot, f) in self.flows.iter().enumerate() {
                let Some(f) = f else { continue };
                let t = if f.remaining <= EPS_BYTES {
                    self.now
                } else if f.rate > 0.0 {
                    self.now + SimTime::from_secs(f.remaining / f.rate)
                } else {
                    continue; // starved flow; cannot finish at current rates
                };
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, self.slot_ids[slot]));
                }
            }
            best
        } else {
            // Pop lazily-invalidated heap entries until a live one
            // surfaces (leave it in place: a timer may still pre-empt it).
            // An entry is live iff its head flow still exists and its
            // group's epoch matches (the group re-stamped no newer entry).
            loop {
                match self.completions.peek() {
                    None => break None,
                    Some(&Reverse((t, id, epoch))) => {
                        let live = self
                            .flow(id)
                            .is_some_and(|f| self.groups[f.group as usize].epoch == epoch);
                        if live {
                            break Some((t, id));
                        }
                        self.completions.pop();
                    }
                }
            }
        };

        let timer_next = self
            .timers
            .peek()
            .map(|Reverse((t, id, key))| (*t, *id, *key));

        let (event_time, is_flow) = match (flow_done, timer_next) {
            (Some((tf, _)), Some((tt, _, _))) => {
                if tf <= tt {
                    (tf, true)
                } else {
                    (tt, false)
                }
            }
            (Some((tf, _)), None) => (tf, true),
            (None, Some((tt, _, _))) => (tt, false),
            (None, None) => {
                panic!(
                    "simulation stalled: {} active flows have zero rate and no timers pending",
                    self.live_flows
                );
            }
        };

        self.advance_to(event_time);

        if is_flow {
            let id = flow_done.expect("flow event chosen").1;
            let flow = self.remove_flow(id).expect("flow exists");
            if !self.reference_mode {
                // The live entry we peeked above is still the heap head;
                // its group's next member gets a fresh entry at the next
                // solve (the retirement below marks the group touched).
                self.completions.pop();
                let g = flow.group as usize;
                self.groups[g].has_entry = false;
                let popped = self.grp_members[g].pop();
                debug_assert_eq!(
                    popped.map(|Reverse((_, fid))| fid),
                    Some(id),
                    "delivered flow heads its group's member heap"
                );
            }
            self.retire_flow_accounting(&flow);
            self.trace_flow(
                id,
                &flow.spec,
                TraceEventKind::Completed {
                    bytes: flow.spec.bytes(),
                },
            );
            self.profile.events += 1;
            self.profile.flow_completions += 1;
            self.rates_stale = true;
            Some(Event::FlowCompleted {
                id: FlowId(id),
                tag: flow.spec.tag,
                outcome: FlowOutcome::Delivered,
            })
        } else {
            let Reverse((_, id, key)) = self.timers.pop().expect("timer event chosen");
            self.pending_timers.remove(&id);
            self.profile.events += 1;
            self.profile.timer_fires += 1;
            Some(Event::Timer {
                id: TimerId(id),
                key,
            })
        }
    }

    /// Moves time forward, progressing flows and recording monitor usage.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        debug_assert!(!self.rates_stale, "advance with stale rates");
        let dt = (t - self.now).as_secs();
        if dt > 0.0 {
            let start = self.now.as_secs();
            let end = t.as_secs();
            if self.reference_mode {
                for f in self.flows.iter_mut().flatten() {
                    if f.rate > 0.0 {
                        f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    }
                }
                // Borrow juggling: record after updating. Recording from
                // the packed cells (not the spec constraints) covers link
                // cells too, identically to the indexed engine.
                for f in self.flows.iter().flatten() {
                    if f.rate > 0.0 {
                        for &c in f.cells() {
                            self.monitor
                                .record_cell(start, end, f.rate, c as usize, f.spec.tag);
                        }
                    }
                }
                self.last_materialize = t;
            } else {
                // Per-flow and per-group state is untouched (progress is
                // anchored); the monitor records straight from the
                // aggregate class tables, visiting only cells with active
                // flows — O(busy cells) per event, independent of both
                // flow and node count. Monitor cells are accounted
                // independently, so the active-list order is immaterial.
                for &ct in &self.active_cells {
                    let rate = self.class_rate_tbl[ct as usize];
                    if rate > 0.0 {
                        let ct = ct as usize;
                        let tag = Traffic::ALL[ct % TAGS];
                        self.monitor.record_cell(start, end, rate, ct / TAGS, tag);
                    }
                }
            }
        }
        self.now = t;
    }

    /// Recomputes max–min fair rates if the flow set changed.
    fn refresh_rates(&mut self) {
        if !self.rates_stale {
            return;
        }
        if self.reference_mode {
            let flow_resources: Vec<Vec<usize>> = self
                .flows
                .iter()
                .flatten()
                .map(|f| f.cells().iter().map(|&c| c as usize).collect())
                .collect();
            let rates = reference::allocate_rates(&self.caps, &flow_resources);
            for (f, rate) in self.flows.iter_mut().flatten().zip(rates) {
                f.rate = rate;
            }
            self.rates_stale = false;
            return;
        }

        // Incremental solve: membership and capacity mutations have
        // already seeded the solver's dirty-resource set; the solve
        // re-runs progressive filling over the dirty contention closure
        // only and reports the groups whose rate bit-changed.
        let mut changed = std::mem::take(&mut self.scr_changed);
        changed.clear();
        let outcome = self.solver.solve(&mut changed);
        self.profile.solves += 1;
        if outcome.full {
            self.profile.full_solves += 1;
        } else {
            self.profile.incremental_solves += 1;
        }
        self.profile.dirty_groups += outcome.dirty_groups as u64;

        // Apply rate changes per group: materialize the progress counter
        // at the old rate up to now, shift the class-rate cells by
        // delta × members-per-class, and mark the group for prediction
        // re-stamping.
        let now = self.now;
        for &(g, new_rate) in &changed {
            let grp = &mut self.groups[g as usize];
            debug_assert!(grp.count > 0, "solver only reports live groups");
            let dt = (now - grp.anchor).as_secs();
            if grp.rate > 0.0 && dt > 0.0 {
                grp.done += grp.rate * dt;
            }
            grp.anchor = now;
            let delta = new_rate - grp.rate;
            grp.rate = new_rate;
            for ci in 0..grp.ncells as usize {
                let c = grp.cells[ci] as usize;
                for (tag, &n) in grp.tag_counts.iter().enumerate() {
                    if n > 0 {
                        self.class_rate_tbl[c * TAGS + tag] += delta * n as f64;
                    }
                }
            }
            if !grp.touched {
                grp.touched = true;
                self.touched_groups.push(g);
            }
        }

        // Per-flow RateChanged trace events (opt-in; tracing implies small
        // runs). Members are emitted per changed group, ascending by flow
        // id — deterministic, and pure observation.
        if self.trace.is_some() {
            let mut ids = std::mem::take(&mut self.scr_trace_ids);
            for &(g, new_rate) in &changed {
                ids.clear();
                ids.extend(
                    self.grp_members[g as usize]
                        .iter()
                        .map(|&Reverse((_, id))| id)
                        .filter(|id| self.id_to_slot.contains_key(id)),
                );
                ids.sort_unstable();
                for &id in &ids {
                    let (tag, src, dst) = {
                        let f = self.flow(id).expect("live member");
                        let (src, dst) = f.spec.endpoints();
                        (f.spec.tag, src, dst)
                    };
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent {
                            at_secs: now.as_secs(),
                            flow: id,
                            tag,
                            src,
                            dst,
                            kind: TraceEventKind::RateChanged { rate: new_rate },
                        });
                    }
                }
            }
            self.scr_trace_ids = ids;
        }
        self.scr_changed = changed;

        // Prediction maintenance for every group whose membership or rate
        // changed: discard dead member-heap heads, recompute the earliest
        // member's completion, and re-stamp the group's global heap entry
        // (bumping the epoch invalidates the previous one in place).
        let mut pushes = 0usize;
        self.scr_entries.clear();
        for ti in 0..self.touched_groups.len() {
            let g = self.touched_groups[ti] as usize;
            let grp = &mut self.groups[g];
            grp.touched = false;
            if grp.count == 0 {
                grp.has_entry = false;
                continue;
            }
            let members = &mut self.grp_members[g];
            while let Some(&Reverse((_, id))) = members.peek() {
                if self.id_to_slot.contains_key(&id) {
                    break;
                }
                members.pop();
            }
            let &Reverse((target_bits, head)) =
                members.peek().expect("live group has a live member");
            let target = f64::from_bits(target_bits);
            let dt = (now - grp.anchor).as_secs();
            let done_now = if grp.rate > 0.0 && dt > 0.0 {
                grp.done + grp.rate * dt
            } else {
                grp.done
            };
            let remaining = (target - done_now).max(0.0);
            let pred = if remaining <= EPS_BYTES {
                Some(now)
            } else if grp.rate > 0.0 {
                Some(now + SimTime::from_secs(remaining / grp.rate))
            } else {
                None // starved; no completion at current rates
            };
            grp.epoch += 1;
            match pred {
                Some(t) => {
                    grp.pred = t;
                    grp.head = head;
                    grp.has_entry = true;
                    self.scr_entries.push(Reverse((t, head, grp.epoch)));
                    pushes += 1;
                }
                None => grp.has_entry = false,
            }
        }
        self.touched_groups.clear();

        // Heap maintenance, at group granularity. When a solve re-stamps
        // most groups, G pushes into a heap full of newly-dead entries
        // leave the garbage behind; a wholesale O(G) heapify from the live
        // per-group entries is cheaper and leaves the heap exactly
        // live-groups long. The same rebuild bounds lazy-invalidation
        // garbage in the few-changes regime.
        let live_groups = self.groups.len() - self.free_groups.len();
        if pushes * 2 >= live_groups.max(1)
            || self.completions.len() + pushes > 4 * live_groups + 64
        {
            self.scr_entries.clear();
            for grp in &self.groups {
                if grp.count > 0 && grp.has_entry {
                    self.scr_entries
                        .push(Reverse((grp.pred, grp.head, grp.epoch)));
                }
            }
            let old = std::mem::replace(
                &mut self.completions,
                BinaryHeap::from(std::mem::take(&mut self.scr_entries)),
            );
            self.scr_entries = old.into_vec();
            self.profile.heap_rebuilds += 1;
        } else {
            for i in 0..pushes {
                self.completions.push(self.scr_entries[i]);
            }
        }

        if self.profile.solves.is_multiple_of(TABLE_REBUILD_PERIOD) {
            // Bound incremental float drift with an exact rebuild —
            // O(groups), not O(flows).
            self.class_rate_tbl.fill(0.0);
            for grp in &self.groups {
                if grp.count == 0 {
                    continue;
                }
                for ci in 0..grp.ncells as usize {
                    let c = grp.cells[ci] as usize;
                    for (tag, &n) in grp.tag_counts.iter().enumerate() {
                        if n > 0 {
                            self.class_rate_tbl[c * TAGS + tag] += grp.rate * n as f64;
                        }
                    }
                }
            }
        }
        self.rates_stale = false;
    }

    /// Differential self-check: verifies that the incremental solver's
    /// per-group rates are bit-identical to a from-scratch full
    /// [`MaxMinSolver::solve_weighted_into`] over the live group registry
    /// (ascending slot order, as the pre-incremental engine solved).
    /// Test-suite hook; no-op in reference mode.
    ///
    /// # Panics
    ///
    /// Panics if any group's rate diverges from the full solve.
    #[doc(hidden)]
    pub fn verify_against_full_solve(&mut self) {
        self.refresh();
        if self.reference_mode {
            return;
        }
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut slots = Vec::new();
        for (g, grp) in self.groups.iter().enumerate() {
            if grp.count == 0 {
                continue;
            }
            targets.extend_from_slice(&grp.cells[..grp.ncells as usize]);
            offsets.push(targets.len() as u32);
            weights.push(grp.count);
            slots.push(g);
        }
        let mut rates = vec![0.0; weights.len()];
        let mut full = MaxMinSolver::new();
        full.solve_weighted_into(&self.caps, &offsets, &targets, &weights, &mut rates);
        for (row, &g) in slots.iter().enumerate() {
            assert_eq!(
                self.groups[g].rate.to_bits(),
                rates[row].to_bits(),
                "incremental rate diverged from full solve for group {g} \
                 (incremental {}, full {})",
                self.groups[g].rate,
                rates[row],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_sim() -> Simulator {
        Simulator::new(SimConfig::uniform(2, NodeCaps::symmetric(100.0, 50.0)))
    }

    #[test]
    fn single_flow_finishes_at_capacity_rate() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        let ev = sim.next_event().unwrap();
        assert_eq!(
            ev,
            Event::FlowCompleted {
                id: f,
                tag: Traffic::Repair,
                outcome: FlowOutcome::Delivered,
            }
        );
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Foreground));
        sim.refresh();
        assert_eq!(sim.flow_rate(a), Some(50.0));
        assert_eq!(sim.flow_rate(b), Some(50.0));
        // First completes at t=2 (ties: lowest id first).
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == a));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
        // The survivor speeds up to 100 and finishes immediately after.
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == b));
        assert!((sim.now().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disk_flows_do_not_contend_with_network() {
        let mut sim = two_node_sim();
        let n = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let d = sim.start_flow(FlowSpec::disk_read(0, 50, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(n), Some(100.0));
        assert_eq!(sim.flow_rate(d), Some(50.0));
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 300, Traffic::Repair)); // done at t=3
        let t = sim.schedule_in(1.0, 42);
        let ev = sim.next_event().unwrap();
        assert_eq!(ev, Event::Timer { id: t, key: 42 });
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { .. }));
        assert!((sim.now().as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = two_node_sim();
        let t = sim.schedule_in(1.0, 1);
        sim.schedule_in(2.0, 2);
        sim.cancel_timer(t);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::Timer { key: 2, .. }));
        assert_eq!(sim.next_event(), None);
        // The cancelled id was discarded along the way; nothing lingers.
        assert!(sim.cancelled_timers.is_empty());
        assert!(sim.pending_timers.is_empty());
    }

    #[test]
    fn cancelling_fired_or_unknown_timers_leaves_no_residue() {
        let mut sim = two_node_sim();
        let t = sim.schedule_in(0.5, 9);
        let ev = sim.next_event().unwrap();
        assert_eq!(ev, Event::Timer { id: t, key: 9 });
        // Fire-then-cancel: the id is gone, so nothing must be retained.
        sim.cancel_timer(t);
        assert!(sim.cancelled_timers.is_empty());
        // Cancelling a never-existing timer is equally inert.
        sim.cancel_timer(TimerId(12345));
        assert!(sim.cancelled_timers.is_empty());
        assert!(sim.pending_timers.is_empty());
    }

    #[test]
    fn cancel_flow_returns_remaining() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.schedule_in(0.5, 0);
        let _ = sim.next_event();
        let left = sim.cancel_flow(f).unwrap();
        assert!((left - 50.0).abs() < 1e-9);
        assert_eq!(sim.cancel_flow(f), None);
    }

    #[test]
    fn class_rate_and_residual_capacity() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Foreground));
        sim.refresh();
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Foreground),
            100.0
        );
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Repair),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(0, ResourceKind::Uplink, &[Traffic::Foreground]),
            0.0
        );
        assert_eq!(
            sim.residual_capacity(1, ResourceKind::Uplink, &[Traffic::Foreground]),
            100.0
        );
    }

    #[test]
    #[should_panic(expected = "rates are stale")]
    fn stale_rate_reads_panic() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let _ = sim.flow_rate(f);
    }

    #[test]
    fn class_flow_count_tracks_admission_and_retirement() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            2
        );
        sim.cancel_flow(f);
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        while sim.next_event().is_some() {}
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            0
        );
    }

    #[test]
    fn duplicate_constraints_are_deduped_at_admission() {
        // Regression: a spec listing the same (node, kind) twice used to
        // double-count load in the solver (halving the flow's rate) and
        // double-record monitor bytes.
        let mut sim = two_node_sim();
        let spec = FlowSpec {
            bytes: 200.0,
            constraints: vec![
                (0, ResourceKind::Uplink),
                (0, ResourceKind::Uplink),
                (1, ResourceKind::Downlink),
            ],
            tag: Traffic::Repair,
        };
        let f = sim.start_flow(spec);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        while sim.next_event().is_some() {}
        let moved = sim
            .monitor()
            .total_bytes(0, ResourceKind::Uplink, Traffic::Repair);
        assert!((moved - 200.0).abs() < 1e-6, "double-recorded: {moved}");
    }

    #[test]
    fn slots_are_reused_after_retirement() {
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(1, 0, 100, Traffic::Repair));
        sim.cancel_flow(a);
        // The freed slot is recycled; ids stay unique and resolvable.
        let c = sim.start_flow(FlowSpec::network(0, 1, 50, Traffic::Repair));
        assert_eq!(sim.active_flows(), 2);
        assert_eq!(sim.flows.len(), 2, "slab should not grow past peak");
        sim.refresh();
        assert_eq!(sim.flow_rate(a), None);
        assert_eq!(sim.flow_rate(b), Some(100.0));
        assert_eq!(sim.flow_rate(c), Some(100.0));
        let mut done = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let Event::FlowCompleted { id, .. } = ev {
                done.push(id);
            }
        }
        assert_eq!(done, vec![c, b]);
    }

    #[test]
    fn cancel_flow_releases_capacity_and_leaves_no_stale_heap_entry() {
        // Regression (indexed engine): cancelling a mid-transfer flow must
        // (a) release its share of node capacity immediately, (b) re-solve
        // rates for flows it shared resources with, and (c) leave no live
        // completion-heap entry that could later surface a phantom event.
        let mut sim = two_node_sim();
        let a = sim.start_flow(FlowSpec::network(0, 1, 400, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 400, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event(); // timer at t=1; both flows at 50 B/s
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        let left = sim.cancel_flow(a).unwrap();
        assert!((left - 350.0).abs() < 1e-9, "a moved 50 bytes: {left}");
        // (a)+(b): the survivor's rate doubles as soon as rates refresh.
        sim.refresh();
        assert_eq!(sim.flow_rate(b), Some(100.0));
        assert_eq!(
            sim.class_rate(0, ResourceKind::Uplink, Traffic::Repair),
            100.0
        );
        assert_eq!(
            sim.class_flow_count(0, ResourceKind::Uplink, Traffic::Repair),
            1
        );
        // (c): the only remaining event is b's completion — 350 bytes at
        // 100 B/s from t=1 — and a's stale heap entry never surfaces.
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == b));
        assert!((sim.now().as_secs() - 4.5).abs() < 1e-9);
        assert_eq!(sim.next_event(), None);
        assert!(sim.completions.is_empty() || sim.reference_mode);
    }

    #[test]
    fn fail_node_aborts_flows_and_releases_capacity() {
        let mut sim = Simulator::new(SimConfig::uniform(3, NodeCaps::symmetric(100.0, 50.0)));
        let doomed = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        let doomed2 = sim.start_flow(FlowSpec::network(2, 1, 1000, Traffic::Repair));
        let survivor = sim.start_flow(FlowSpec::network(2, 0, 100, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event();
        sim.fail_node(1);
        assert!(sim.is_node_failed(1));
        // Aborts are delivered in flow-id order, at the current time.
        let ev = sim.next_event().unwrap();
        assert_eq!(
            ev,
            Event::FlowCompleted {
                id: doomed,
                tag: Traffic::Repair,
                outcome: FlowOutcome::Aborted,
            }
        );
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == doomed2
        ));
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
        // Capacity the doomed flows held is released for the survivor.
        sim.refresh();
        assert_eq!(sim.flow_rate(doomed), None);
        assert_eq!(sim.flow_rate(survivor), Some(100.0));
        // New flows touching the failed node abort on admission...
        let refused = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == refused
        ));
        // ...until the node recovers.
        sim.recover_node(1);
        let ok = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        let mut delivered = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let Event::FlowCompleted {
                id,
                outcome: FlowOutcome::Delivered,
                ..
            } = ev
            {
                delivered.push(id);
            }
        }
        assert!(delivered.contains(&ok));
        // The monitor accounted the killed flows' unsent bytes.
        assert!(sim.monitor().total_aborted_bytes() > 0.0);
    }

    #[test]
    fn fail_node_is_idempotent_and_double_failure_aborts_once() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.fail_node(1);
        sim.fail_node(1);
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == f
        ));
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn scale_node_caps_rerates_flows_from_base() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        sim.scale_node_caps(0, 0.25, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(25.0));
        // Scaling is relative to the configured base, not compounding.
        sim.scale_node_caps(0, 0.5, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(50.0));
        sim.scale_node_caps(0, 1.0, 1.0);
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        assert_eq!(sim.capacity(0, ResourceKind::Uplink), 100.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 0, Traffic::Repair));
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted { id, .. } if id == f));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn monitor_accounts_transferred_bytes() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        while sim.next_event().is_some() {}
        let m = sim.monitor();
        assert!((m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert!((m.total_bytes(1, ResourceKind::Downlink, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert_eq!(m.total_bytes(1, ResourceKind::Uplink, Traffic::Repair), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flow_to_unknown_node_rejected() {
        let mut sim = two_node_sim();
        let _ = sim.start_flow(FlowSpec::network(0, 9, 1, Traffic::Repair));
    }

    #[test]
    fn deterministic_event_order_across_runs() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            let mut log = Vec::new();
            for i in 0..3u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    3,
                    50 + i * 10,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(2.0, 7);
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_admission_equals_sequential() {
        let specs =
            || (0..5u64).map(|i| FlowSpec::network(i as usize % 3, 3, 40 + i * 7, Traffic::Repair));
        let drain = |sim: &mut Simulator| {
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        let mut batched = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
        let ids = batched.start_flows(specs());
        assert_eq!(ids.len(), 5);
        let mut sequential = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
        for s in specs() {
            sequential.start_flow(s);
        }
        assert_eq!(drain(&mut batched), drain(&mut sequential));
    }

    #[test]
    fn trace_records_full_flow_lifecycle() {
        let mut sim = two_node_sim();
        sim.set_trace_enabled(true);
        let a = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Foreground));
        while sim.next_event().is_some() {}
        let events = sim.trace().unwrap().events().to_vec();
        let of =
            |id: FlowId| -> Vec<&TraceEvent> { events.iter().filter(|e| e.flow == id.0).collect() };
        // a: admitted at 0, rated 50 (shared), re-rated 100 when b leaves
        // ... except a (lower id) finishes first at the tie; both deliver.
        let ea = of(a);
        assert!(matches!(ea[0].kind, TraceEventKind::Admitted { bytes } if bytes == 100.0));
        assert_eq!(ea[0].src, 0);
        assert_eq!(ea[0].dst, 1);
        assert!(ea
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::RateChanged { rate } if rate == 50.0)));
        assert!(matches!(
            ea.last().unwrap().kind,
            TraceEventKind::Completed { bytes } if bytes == 100.0
        ));
        let eb = of(b);
        assert_eq!(eb.first().unwrap().tag, Traffic::Foreground);
        assert!(matches!(
            eb.last().unwrap().kind,
            TraceEventKind::Completed { .. }
        ));
        // The survivor was re-rated to full capacity after a left.
        assert!(eb
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::RateChanged { rate } if rate == 100.0)));
    }

    #[test]
    fn trace_labels_abort_causes() {
        let mut sim = two_node_sim();
        sim.set_trace_enabled(true);
        let killed = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        let cancelled = sim.start_flow(FlowSpec::network(1, 0, 1000, Traffic::Repair));
        sim.schedule_in(1.0, 0);
        let _ = sim.next_event();
        sim.cancel_flow(cancelled);
        sim.fail_node(1);
        // Admission against the failed node also traces an abort.
        let refused = sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        while sim.next_event().is_some() {}
        let events = sim.take_trace().unwrap().into_events();
        let cause_of = |id: FlowId| {
            events.iter().find_map(|e| match e.kind {
                TraceEventKind::Aborted { cause, .. } if e.flow == id.0 => Some(cause),
                _ => None,
            })
        };
        assert_eq!(cause_of(killed), Some(AbortCause::NodeFailure));
        assert_eq!(cause_of(cancelled), Some(AbortCause::Cancelled));
        assert_eq!(cause_of(refused), Some(AbortCause::NodeFailure));
        // Aborted events carry the undelivered remainder.
        let killed_remaining = events
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Aborted { remaining, .. } if e.flow == killed.0 => Some(remaining),
                _ => None,
            })
            .unwrap();
        // `killed` ran alone on its links at 100 B/s for 1 s.
        assert!((killed_remaining - 900.0).abs() < 1e-9);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let run = |traced: bool| {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.set_trace_enabled(traced);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.7, 3);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn traced_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.set_trace_enabled(true);
            for i in 0..3u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    3,
                    50 + i * 10,
                    Traffic::Repair,
                ));
            }
            while sim.next_event().is_some() {}
            sim.take_trace().unwrap().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_is_off_by_default_and_droppable() {
        let mut sim = two_node_sim();
        assert!(sim.trace().is_none());
        sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        while sim.next_event().is_some() {}
        assert!(sim.take_trace().is_none());
        // Enabling then disabling drops recorded events.
        sim.set_trace_enabled(true);
        sim.start_flow(FlowSpec::network(0, 1, 10, Traffic::Repair));
        sim.set_trace_enabled(false);
        assert!(sim.trace().is_none());
    }

    #[test]
    fn profile_counts_events_solves_and_timer_churn() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        sim.start_flow(FlowSpec::network(1, 0, 100, Traffic::Repair));
        let t = sim.schedule_in(0.1, 1);
        sim.schedule_in(0.2, 2);
        sim.cancel_timer(t);
        sim.cancel_flow(f);
        let mut events = 0;
        while sim.next_event().is_some() {
            events += 1;
        }
        let p = sim.profile();
        assert_eq!(p.events, events);
        assert_eq!(p.flow_completions, 1);
        assert_eq!(p.timer_fires, 1);
        assert_eq!(p.timers_scheduled, 2);
        assert_eq!(p.timers_cancelled, 1);
        assert!(p.solves >= 1, "at least one rate solve happened");
        assert!(p.solver_rounds >= p.solves, "each solve runs >= 1 round");
    }

    #[test]
    fn profile_counts_aborts() {
        let mut sim = two_node_sim();
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        sim.fail_node(1);
        while sim.next_event().is_some() {}
        let p = sim.profile();
        assert_eq!(p.flow_aborts, 1);
        assert_eq!(p.flow_completions, 0);
    }

    #[test]
    fn reference_engine_produces_the_same_log() {
        let run = |reference: bool| {
            let mut sim = Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0)));
            sim.use_reference_engine(reference);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.7, 3);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs()));
            }
            log
        };
        let fast = run(false);
        let slow = run(true);
        assert_eq!(fast.len(), slow.len());
        for ((ea, ta), (eb, tb)) in fast.iter().zip(&slow) {
            assert_eq!(ea, eb);
            assert!((ta - tb).abs() < 1e-9, "{ta} vs {tb}");
        }
    }

    #[test]
    fn check_fresh_reports_staleness_without_panicking() {
        let mut sim = two_node_sim();
        assert!(
            sim.check_fresh().is_err(),
            "a new simulator is stale until its seed solve"
        );
        sim.refresh();
        assert!(sim.check_fresh().is_ok());
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let err = sim.check_fresh().expect_err("admission staled the rates");
        assert_eq!(err, StaleRatesError);
        assert!(err.to_string().contains("rates are stale"));
        sim.refresh();
        assert!(sim.check_fresh().is_ok());
        sim.cancel_flow(f);
        assert!(sim.check_fresh().is_err(), "cancellation staled the rates");
        sim.refresh();
        assert!(sim.check_fresh().is_ok());
    }

    #[test]
    #[should_panic(expected = "rates are stale")]
    fn stale_rate_reads_still_panic() {
        let mut sim = two_node_sim();
        let f = sim.start_flow(FlowSpec::network(0, 1, 100, Traffic::Repair));
        let _ = sim.flow_rate(f);
    }

    #[test]
    fn profile_splits_full_and_incremental_solves() {
        let mut sim = Simulator::new(SimConfig::uniform(6, NodeCaps::symmetric(100.0, 100.0)));
        // Two disjoint contention components: (0 -> 1) and (2 -> 3, 2 -> 4).
        sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Foreground));
        sim.refresh(); // first solve is always full
        sim.start_flow(FlowSpec::network(2, 3, 1000, Traffic::Repair));
        sim.refresh(); // touches only the new component: incremental
        sim.start_flow(FlowSpec::network(2, 4, 1000, Traffic::Repair));
        sim.refresh();
        let p = sim.profile();
        assert_eq!(p.solves, 3);
        assert_eq!(p.full_solves + p.incremental_solves, p.solves);
        assert_eq!(p.full_solves, 1, "only the seed solve covers every group");
        assert!(p.dirty_groups >= 3, "every solve re-rated >= 1 group");
        sim.verify_against_full_solve();
    }

    /// 4 nodes, 2 racks (round-robin: 0,2 in rack 0; 1,3 in rack 1).
    fn racked_sim(tor: f64, spine: Option<f64>) -> Simulator {
        let topo = Topology::round_robin(4, 2, tor, tor, spine);
        Simulator::new(SimConfig::uniform(4, NodeCaps::symmetric(100.0, 50.0)).with_topology(topo))
    }

    #[test]
    fn cross_rack_flow_constrained_by_spine() {
        let mut sim = racked_sim(100.0, Some(30.0));
        assert_eq!(sim.link_count(), 5);
        assert_eq!(sim.link_capacity(4), 30.0);
        let f = sim.start_flow(FlowSpec::network(0, 1, 300, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(30.0), "spine is the bottleneck");
        assert_eq!(sim.link_class_rate(4, Traffic::Repair), 30.0);
        let _ = sim.next_event();
        assert!((sim.now().as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn same_rack_flows_avoid_fabric_links() {
        let mut sim = racked_sim(10.0, Some(1.0));
        // 0 -> 2 stays inside rack 0: tiny fabric caps are irrelevant.
        let f = sim.start_flow(FlowSpec::network(0, 2, 100, Traffic::Repair));
        sim.refresh();
        assert_eq!(sim.flow_rate(f), Some(100.0));
        for l in 0..sim.link_count() {
            assert_eq!(sim.link_class_rate(l, Traffic::Repair), 0.0);
        }
    }

    #[test]
    fn tor_uplink_shared_by_cross_rack_flows() {
        let mut sim = racked_sim(80.0, None);
        // Both flows leave rack 0 through tor_up[0] (80 B/s) from distinct
        // node uplinks (100 B/s each).
        let a = sim.start_flow(FlowSpec::network(0, 1, 400, Traffic::Repair));
        let b = sim.start_flow(FlowSpec::network(2, 3, 400, Traffic::Foreground));
        sim.refresh();
        assert_eq!(sim.flow_rate(a), Some(40.0));
        assert_eq!(sim.flow_rate(b), Some(40.0));
        assert_eq!(sim.link_class_rate(0, Traffic::Repair), 40.0);
        assert_eq!(sim.link_class_rate(0, Traffic::Foreground), 40.0);
        assert_eq!(sim.link_residual_capacity(0, &[Traffic::Foreground]), 40.0);
    }

    #[test]
    fn single_rack_topology_matches_rackless_engine_bitwise() {
        // One rack means no flow ever takes a link cell, so the event log
        // must be bit-identical to the topology-free engine.
        let run = |topo: Option<Topology>| {
            let mut cfg = SimConfig::uniform(4, NodeCaps::symmetric(10.0, 10.0));
            if let Some(t) = topo {
                cfg = cfg.with_topology(t);
            }
            let mut sim = Simulator::new(cfg);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.7, 3);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        let flat = run(Some(Topology::round_robin(4, 1, 40.0, 40.0, Some(40.0))));
        assert_eq!(flat, run(None));
    }

    #[test]
    fn monitor_accounts_cross_rack_link_bytes() {
        let mut sim = racked_sim(100.0, Some(50.0));
        let topo = sim.topology().unwrap().clone();
        sim.start_flow(FlowSpec::network(0, 1, 200, Traffic::Repair));
        while sim.next_event().is_some() {}
        let m = sim.monitor();
        let up0 = topo.tor_up_link(0);
        let down1 = topo.tor_down_link(1);
        let spine = topo.spine_link().unwrap();
        assert!((m.link_total_bytes(up0, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert!((m.link_total_bytes(down1, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert!((m.link_total_bytes(spine, Traffic::Repair) - 200.0).abs() < 1e-6);
        assert_eq!(
            m.link_total_bytes(topo.tor_up_link(1), Traffic::Repair),
            0.0
        );
        // Node-level accounting is unchanged by the fabric.
        assert!((m.total_bytes(0, ResourceKind::Uplink, Traffic::Repair) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn reference_engine_matches_indexed_under_topology() {
        // Same contract as `reference_engine_produces_the_same_log`: the
        // two engines accumulate progress differently (per-group anchors
        // vs per-flow decrements), so times agree to tolerance, not bits.
        let run = |reference: bool| {
            let mut sim = racked_sim(60.0, Some(45.0));
            sim.use_reference_engine(reference);
            for i in 0..4u64 {
                sim.start_flow(FlowSpec::network(
                    i as usize,
                    (i as usize + 1) % 4,
                    30 + i * 11,
                    Traffic::Repair,
                ));
            }
            sim.schedule_in(1.3, 7);
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs()));
            }
            // Fabric byte accounting must agree too.
            let m = sim.monitor();
            for l in 0..sim.link_count() {
                log.push((format!("link{l}"), m.link_total_bytes(l, Traffic::Repair)));
            }
            log
        };
        let fast = run(false);
        let slow = run(true);
        assert_eq!(fast.len(), slow.len());
        for ((ea, va), (eb, vb)) in fast.iter().zip(&slow) {
            assert_eq!(ea, eb);
            assert!((va - vb).abs() < 1e-6, "{ea}: {va} vs {vb}");
        }
    }

    #[test]
    fn fail_node_under_topology_kills_only_its_flows_and_frees_links() {
        let mut sim = racked_sim(100.0, Some(30.0));
        let doomed = sim.start_flow(FlowSpec::network(0, 1, 1000, Traffic::Repair));
        let survivor = sim.start_flow(FlowSpec::network(2, 3, 1000, Traffic::Repair));
        sim.refresh();
        // Both share the 30 B/s spine.
        assert_eq!(sim.flow_rate(doomed), Some(15.0));
        assert_eq!(sim.flow_rate(survivor), Some(15.0));
        sim.fail_node(1);
        let ev = sim.next_event().unwrap();
        assert!(matches!(
            ev,
            Event::FlowCompleted { id, outcome: FlowOutcome::Aborted, .. } if id == doomed
        ));
        sim.refresh();
        // The spine share is released to the survivor.
        assert_eq!(sim.flow_rate(survivor), Some(30.0));
        sim.verify_against_full_solve();
    }

    #[test]
    fn incremental_solver_stays_exact_under_topology_churn() {
        // Adds, cancels, failures, and cap scaling across a spine-bound
        // fabric, cross-checked against a from-scratch solve each step —
        // exercises the soft-resource (link) closure end to end.
        let mut sim = racked_sim(70.0, Some(40.0));
        let mut ids = Vec::new();
        for i in 0..12u64 {
            let (s, d) = ((i % 4) as usize, ((i + 1) % 4) as usize);
            ids.push(sim.start_flow(FlowSpec::network(s, d, 500 + i * 37, Traffic::Repair)));
            sim.verify_against_full_solve();
        }
        sim.cancel_flow(ids[3]);
        sim.verify_against_full_solve();
        sim.scale_node_caps(2, 0.5, 1.0);
        sim.verify_against_full_solve();
        sim.fail_node(3);
        sim.verify_against_full_solve();
        while sim.next_event().is_some() {}
        sim.verify_against_full_solve();
    }

    #[test]
    #[should_panic(expected = "topology describes")]
    fn mismatched_topology_node_count_rejected() {
        let topo = Topology::round_robin(3, 1, 10.0, 10.0, None);
        let _ = Simulator::new(SimConfig::uniform(4, NodeCaps::default()).with_topology(topo));
    }
}
