//! Flow-level discrete-event simulator for cluster networks and storage.
//!
//! This crate is the testbed substitute for the paper's 20-node Amazon EC2
//! cluster. It models:
//!
//! - **Nodes** with four capacity-limited resources each: network uplink,
//!   network downlink, disk read, and disk write bandwidth
//!   ([`NodeCaps`], [`ResourceKind`]).
//! - **Flows** ([`FlowSpec`]) — byte transfers that traverse one or more
//!   resources (a network transfer consumes the source's uplink and the
//!   destination's downlink; a disk read consumes the node's disk-read
//!   bandwidth). Concurrent flows share resources by **max–min fairness**
//!   (progressive filling), the standard abstraction for TCP-like
//!   bandwidth sharing.
//! - **Traffic classes** ([`Traffic`]) so repair, foreground, and injected
//!   background traffic can be accounted separately — this powers both the
//!   paper's measurements (Figs. 5–6) and ChameleonEC's residual-bandwidth
//!   estimation.
//! - **Hierarchical fabrics** ([`Topology`]): racks of nodes joined by
//!   per-rack ToR up/down links and an optionally oversubscribed spine,
//!   compiled into shared link resources that additionally constrain
//!   cross-rack flows (same-rack flows never touch them).
//! - A **windowed bandwidth monitor** ([`Monitor`]) recording per-node,
//!   per-direction, per-class usage in fixed windows (15 s in §II-D).
//! - **Deterministic fault injection** ([`faults`]): seeded schedules of
//!   node crashes/recoveries, transient slowdowns, and disk degradation,
//!   driven off the engine's timer wheel. Killed flows surface as
//!   [`FlowOutcome::Aborted`] completions instead of silently vanishing.
//! - **Observability** ([`trace`]): an opt-in, zero-cost-when-off
//!   [`TraceSink`] of structured flow-lifecycle events
//!   (admitted/rate-changed/completed/aborted, with class, endpoints,
//!   bytes, and cause) plus always-on [`EngineProfile`] self-profiling
//!   counters (events, solver invocations and rounds, heap rebuilds,
//!   timer churn).
//!
//! The simulator uses a *pull* event loop: drivers call
//! [`Simulator::next_event`] and react to [`Event`]s, starting new flows and
//! timers as the experiment unfolds. Everything is single-threaded and
//! deterministic.
//!
//! # Examples
//!
//! ```
//! use chameleon_simnet::{Event, FlowSpec, NodeCaps, SimConfig, Simulator, Traffic};
//!
//! // Two nodes with 10 Gb/s links and 500 MB/s disks.
//! let caps = NodeCaps::symmetric(1.25e9, 500e6);
//! let mut sim = Simulator::new(SimConfig::uniform(2, caps));
//! let flow = sim.start_flow(FlowSpec::network(0, 1, 1_250_000_000, Traffic::Foreground));
//! match sim.next_event() {
//!     Some(Event::FlowCompleted { id, .. }) => assert_eq!(id, flow),
//!     other => panic!("unexpected {other:?}"),
//! }
//! // The 1.25 GB transfer at 1.25 GB/s takes one second.
//! assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod faults;
mod flow;
pub mod maxmin;
mod monitor;
mod node;
mod time;
pub mod topology;
pub mod trace;

pub use engine::{Event, SimConfig, Simulator, StaleRatesError};
pub use faults::{FaultEvent, FaultInjector, FaultPlan, FaultSpec};
pub use flow::{FlowId, FlowOutcome, FlowSpec, TimerId};
pub use maxmin::{allocate_rates, IncrementalSolver, MaxMinSolver, SolveOutcome};
pub use monitor::{Monitor, UsageSample};
pub use node::{NodeCaps, NodeId, ResourceKind, Traffic};
pub use time::SimTime;
pub use topology::Topology;
pub use trace::{AbortCause, EngineProfile, TraceEvent, TraceEventKind, TraceSink};
