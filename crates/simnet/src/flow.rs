//! Flows and timers.

use crate::node::{NodeId, ResourceKind, Traffic};

/// Unique identifier of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// Unique identifier of a timer within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// How a flow ended.
///
/// Every admitted flow eventually surfaces exactly one
/// [`Event::FlowCompleted`](crate::Event::FlowCompleted); the outcome says
/// whether it delivered its final byte or was killed by a node failure
/// ([`Simulator::fail_node`](crate::Simulator::fail_node)). Drivers that
/// ignore the distinction silently treat partial transfers as complete, so
/// repair logic must branch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOutcome {
    /// The flow transferred all of its bytes.
    Delivered,
    /// The flow was killed mid-transfer (a node it traversed failed, or it
    /// was started against an already-failed node).
    Aborted,
}

impl FlowOutcome {
    /// `true` for [`FlowOutcome::Delivered`].
    pub fn is_delivered(self) -> bool {
        matches!(self, FlowOutcome::Delivered)
    }
}

impl core::fmt::Display for TimerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// Maximum number of node resources a [`FlowSpec`] can name.
pub(crate) const MAX_SPEC_CONSTRAINTS: usize = 4;

/// Maximum number of resource cells a single flow can traverse once the
/// engine has compiled it: up to [`MAX_SPEC_CONSTRAINTS`] node cells plus
/// up to three shared link cells (ToR up, ToR down, spine) appended for
/// cross-rack flows under a [`Topology`](crate::Topology).
pub(crate) const MAX_CONSTRAINTS: usize = 8;

/// Specification of a byte transfer through one or more node resources.
///
/// Use the constructors for the common shapes:
/// [`FlowSpec::network`] (src uplink → dst downlink),
/// [`FlowSpec::disk_read`], [`FlowSpec::disk_write`], or
/// [`FlowSpec::custom`] for anything else (e.g. a read-and-send stage that
/// holds disk-read and uplink simultaneously).
///
/// # Examples
///
/// ```
/// use chameleon_simnet::{FlowSpec, Traffic};
/// let f = FlowSpec::network(0, 3, 64 << 20, Traffic::Repair);
/// assert_eq!(f.bytes(), (64u64 << 20) as f64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    pub(crate) bytes: f64,
    pub(crate) constraints: Vec<(NodeId, ResourceKind)>,
    pub(crate) tag: Traffic,
}

impl FlowSpec {
    /// A network transfer from `src` to `dst`, constrained by the source
    /// uplink and destination downlink.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local copies don't consume the network) or
    /// if `bytes` is negative.
    pub fn network(src: NodeId, dst: NodeId, bytes: u64, tag: Traffic) -> Self {
        assert_ne!(src, dst, "network flow needs distinct endpoints");
        FlowSpec {
            bytes: bytes as f64,
            constraints: vec![(src, ResourceKind::Uplink), (dst, ResourceKind::Downlink)],
            tag,
        }
    }

    /// A disk read of `bytes` on `node`.
    pub fn disk_read(node: NodeId, bytes: u64, tag: Traffic) -> Self {
        FlowSpec {
            bytes: bytes as f64,
            constraints: vec![(node, ResourceKind::DiskRead)],
            tag,
        }
    }

    /// A disk write of `bytes` on `node`.
    pub fn disk_write(node: NodeId, bytes: u64, tag: Traffic) -> Self {
        FlowSpec {
            bytes: bytes as f64,
            constraints: vec![(node, ResourceKind::DiskWrite)],
            tag,
        }
    }

    /// A flow constrained by an arbitrary set of resources (at most
    /// [`MAX_CONSTRAINTS`](crate::FlowSpec::custom) = 4).
    ///
    /// # Panics
    ///
    /// Panics if `constraints` is empty, longer than 4, or contains
    /// duplicates.
    pub fn custom(bytes: u64, constraints: Vec<(NodeId, ResourceKind)>, tag: Traffic) -> Self {
        assert!(
            !constraints.is_empty() && constraints.len() <= MAX_SPEC_CONSTRAINTS,
            "1..=4 constraints required"
        );
        for (i, a) in constraints.iter().enumerate() {
            assert!(
                constraints[i + 1..].iter().all(|b| b != a),
                "duplicate constraint {a:?}"
            );
        }
        FlowSpec {
            bytes: bytes as f64,
            constraints,
            tag,
        }
    }

    /// Total size of the transfer in bytes.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }

    /// The traffic class of the flow.
    pub fn tag(&self) -> Traffic {
        self.tag
    }

    /// The resources this flow traverses.
    pub fn constraints(&self) -> &[(NodeId, ResourceKind)] {
        &self.constraints
    }

    /// The (first, last) constraint nodes — (src, dst) for a network flow,
    /// the same node twice for a single-resource disk flow. Used by the
    /// trace layer to label lifecycle events.
    pub(crate) fn endpoints(&self) -> (NodeId, NodeId) {
        let first = self.constraints.first().map_or(0, |&(n, _)| n);
        let last = self.constraints.last().map_or(first, |&(n, _)| n);
        (first, last)
    }
}

/// A live flow inside the engine.
///
/// The reference engine tracks per-flow `remaining`/`rate` directly. The
/// indexed engine keeps per-flow state immutable after admission: progress
/// and rate live on the flow's *group*, and `target` pins the flow's
/// completion point on the group's cumulative progress counter (the flow
/// finishes when the counter reaches `target`).
#[derive(Debug, Clone)]
pub(crate) struct Flow {
    pub(crate) spec: FlowSpec,
    /// Bytes left to transfer (reference engine only; the indexed engine
    /// derives this from `target` minus group progress).
    pub(crate) remaining: f64,
    /// Current max–min rate (reference engine only; the indexed engine
    /// reads the group's rate).
    pub(crate) rate: f64,
    /// The flow's resource cells — node cells (`node * 4 + kind`)
    /// followed by any shared link cells the engine appended for
    /// cross-rack transfers — packed flat at admission so the per-solve
    /// hot loops never chase the `spec` constraint vector.
    pub(crate) cells: [u32; MAX_CONSTRAINTS],
    pub(crate) ncells: u8,
    /// Index of the flow group (distinct resource set) this flow belongs
    /// to; assigned by the engine at admission.
    pub(crate) group: u32,
    /// Value of the group's cumulative progress counter at which this
    /// flow completes (group `done` at admission + flow bytes; indexed
    /// engine only, immutable).
    pub(crate) target: f64,
}

impl Flow {
    pub(crate) fn new(spec: FlowSpec) -> Self {
        let remaining = spec.bytes;
        let mut cells = [0u32; MAX_CONSTRAINTS];
        for (c, &(node, kind)) in cells.iter_mut().zip(&spec.constraints) {
            *c = (node * 4 + kind.index()) as u32;
        }
        let ncells = spec.constraints.len() as u8;
        Flow {
            spec,
            remaining,
            rate: 0.0,
            cells,
            ncells,
            group: u32::MAX,
            target: 0.0,
        }
    }

    /// The packed resource cells this flow traverses.
    pub(crate) fn cells(&self) -> &[u32] {
        &self.cells[..self.ncells as usize]
    }

    /// Appends one resource cell (used by the engine to attach shared
    /// link cells to cross-rack flows after node-cell packing).
    pub(crate) fn push_cell(&mut self, cell: u32) {
        assert!(
            (self.ncells as usize) < MAX_CONSTRAINTS,
            "flow cell capacity exceeded"
        );
        self.cells[self.ncells as usize] = cell;
        self.ncells += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_flow_has_two_constraints() {
        let f = FlowSpec::network(1, 2, 100, Traffic::Foreground);
        assert_eq!(f.constraints().len(), 2);
        assert_eq!(f.constraints()[0], (1, ResourceKind::Uplink));
        assert_eq!(f.constraints()[1], (2, ResourceKind::Downlink));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn self_loop_rejected() {
        let _ = FlowSpec::network(3, 3, 1, Traffic::Repair);
    }

    #[test]
    #[should_panic(expected = "duplicate constraint")]
    fn duplicate_constraints_rejected() {
        let _ = FlowSpec::custom(
            1,
            vec![(0, ResourceKind::Uplink), (0, ResourceKind::Uplink)],
            Traffic::Repair,
        );
    }

    #[test]
    fn disk_flows() {
        let r = FlowSpec::disk_read(5, 10, Traffic::Repair);
        assert_eq!(r.constraints(), &[(5, ResourceKind::DiskRead)]);
        let w = FlowSpec::disk_write(5, 10, Traffic::Repair);
        assert_eq!(w.constraints(), &[(5, ResourceKind::DiskWrite)]);
    }
}
