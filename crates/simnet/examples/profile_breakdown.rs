//! Ad-hoc breakdown of the indexed engine's per-event cost at 10k flows.
//! Run with: cargo run --release -p chameleon-simnet --example profile_breakdown

use std::time::Instant;

use chameleon_simnet::{FlowSpec, MaxMinSolver, NodeCaps, SimConfig, Simulator, Traffic};

const NODES: usize = 20;
const FLOWS: usize = 10_000;

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn random_spec(rng: &mut Rng) -> FlowSpec {
    let src = (rng.next() as usize) % NODES;
    let dst = (src + 1 + (rng.next() as usize) % (NODES - 1)) % NODES;
    let bytes = (1 + rng.next() % 64) << 20;
    FlowSpec::network(src, dst, bytes, Traffic::Foreground)
}

fn main() {
    let mut rng = Rng(7);

    // --- solver alone on a 10k-flow CSR ---
    let caps = vec![125_000_000.0f64; NODES * 4];
    let mut offsets = vec![0u32];
    let mut targets = Vec::new();
    for _ in 0..FLOWS {
        let src = (rng.next() as usize) % NODES;
        let dst = (src + 1 + (rng.next() as usize) % (NODES - 1)) % NODES;
        targets.push((src * 4) as u32);
        targets.push((dst * 4 + 1) as u32);
        offsets.push(targets.len() as u32);
    }
    let mut rates = vec![0.0; FLOWS];
    let mut solver = MaxMinSolver::new();
    solver.solve_into(&caps, &offsets, &targets, &mut rates); // warm
    let t = Instant::now();
    let iters = 200;
    for _ in 0..iters {
        solver.solve_into(&caps, &offsets, &targets, &mut rates);
    }
    println!(
        "solve_into:      {:>8.1} us",
        t.elapsed().as_secs_f64() * 1e6 / iters as f64
    );

    // --- refresh cycle (cancel one + admit one + refresh) ---
    let mut sim = Simulator::new(SimConfig::uniform(NODES, NodeCaps::default()));
    let ids = sim.start_flows((0..FLOWS).map(|_| random_spec(&mut rng)));
    sim.refresh();
    let t = Instant::now();
    for &id in ids.iter().take(iters) {
        sim.cancel_flow(id);
        sim.start_flow(random_spec(&mut rng));
        sim.refresh();
    }
    println!(
        "refresh cycle:   {:>8.1} us",
        t.elapsed().as_secs_f64() * 1e6 / iters as f64
    );

    // --- full event loop ---
    let mut sim = Simulator::new(SimConfig::uniform(NODES, NodeCaps::default()));
    sim.start_flows((0..FLOWS).map(|_| random_spec(&mut rng)));
    let t = Instant::now();
    for _ in 0..iters {
        sim.next_event().unwrap();
        sim.start_flow(random_spec(&mut rng));
    }
    println!(
        "full event loop: {:>8.1} us",
        t.elapsed().as_secs_f64() * 1e6 / iters as f64
    );
}
