//! Property-based tests for the simulator: fairness invariants, byte
//! conservation, and determinism under random flow workloads.

use chameleon_simnet::{
    allocate_rates, Event, FlowSpec, NodeCaps, ResourceKind, SimConfig, Simulator, Traffic,
};
use proptest::prelude::*;

/// Random flow sets over a small resource graph.
fn flows_strategy(resources: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..resources, 1..=3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..20,
    )
}

proptest! {
    #[test]
    fn maxmin_never_exceeds_capacity_and_is_pareto(
        caps in proptest::collection::vec(0.5f64..100.0, 4..8),
        flows in flows_strategy(4),
    ) {
        let flows: Vec<Vec<usize>> = flows
            .into_iter()
            .map(|f| f.into_iter().filter(|&r| r < caps.len()).collect::<Vec<_>>())
            .filter(|f: &Vec<usize>| !f.is_empty())
            .collect();
        prop_assume!(!flows.is_empty());
        let rates = allocate_rates(&caps, &flows);
        // Feasibility.
        let mut used = vec![0.0; caps.len()];
        for (f, flow) in flows.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            for &r in flow {
                used[r] += rates[f];
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c + 1e-6, "{u} > {c}");
        }
        // Pareto efficiency: every flow crosses a saturated resource.
        for flow in &flows {
            prop_assert!(
                flow.iter().any(|&r| used[r] >= caps[r] - 1e-6),
                "flow {flow:?} could be raised"
            );
        }
    }

    #[test]
    fn maxmin_is_fair_on_shared_bottleneck(
        n in 2usize..10,
        cap in 1.0f64..100.0,
    ) {
        // n identical flows over one resource: all get cap / n.
        let flows = vec![vec![0usize]; n];
        let rates = allocate_rates(&[cap], &flows);
        for r in rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn simulation_conserves_bytes(
        seed in any::<u64>(),
        flow_count in 1usize..12,
    ) {
        let caps = NodeCaps::symmetric(100.0, 50.0);
        let mut sim = Simulator::new(SimConfig::uniform(4, caps));
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut expected = [0.0f64; 4];
        for _ in 0..flow_count {
            let src = (next() % 4) as usize;
            let mut dst = (next() % 4) as usize;
            if dst == src {
                dst = (dst + 1) % 4;
            }
            let bytes = 1 + next() % 500;
            expected[src] += bytes as f64;
            sim.start_flow(FlowSpec::network(src, dst, bytes, Traffic::Repair));
        }
        let mut completions = 0;
        while let Some(ev) = sim.next_event() {
            if matches!(ev, Event::FlowCompleted { .. }) {
                completions += 1;
            }
        }
        prop_assert_eq!(completions, flow_count);
        for node in 0..4 {
            let moved = sim
                .monitor()
                .total_bytes(node, ResourceKind::Uplink, Traffic::Repair);
            prop_assert!(
                (moved - expected[node]).abs() < 1e-3,
                "node {node}: {moved} vs {}",
                expected[node]
            );
        }
        // Monitor never over-reports capacity.
        let caps_vec = vec![caps; 4];
        prop_assert!(sim.monitor().worst_overshoot(&caps_vec) < 1e-6);
    }

    #[test]
    fn simulation_time_is_monotone_and_deterministic(
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig::uniform(3, NodeCaps::symmetric(10.0, 10.0)));
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..6 {
                let src = (next() % 3) as usize;
                let dst = (src + 1 + (next() % 2) as usize) % 3;
                sim.start_flow(FlowSpec::network(src, dst, 1 + next() % 100, Traffic::Repair));
                sim.schedule_in((next() % 10) as f64 * 0.1, next());
            }
            let mut trace = Vec::new();
            let mut last = 0.0;
            while let Some(ev) = sim.next_event() {
                let now = sim.now().as_secs();
                assert!(now >= last, "time went backwards");
                last = now;
                trace.push((format!("{ev:?}"), now.to_bits()));
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
