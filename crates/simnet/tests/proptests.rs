//! Property-based tests for the simulator: fairness invariants, byte
//! conservation, determinism under random flow workloads, and the
//! differential suite proving the indexed engine (inverted-index solver,
//! incremental class tables, completion heap) matches the reference
//! engine event for event.

use chameleon_simnet::{
    allocate_rates, maxmin, Event, FlowSpec, NodeCaps, ResourceKind, SimConfig, Simulator,
    Topology, Traffic,
};
use proptest::prelude::*;

/// Random flow sets over a small resource graph.
fn flows_strategy(resources: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..resources, 1..=3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..20,
    )
}

proptest! {
    #[test]
    fn maxmin_never_exceeds_capacity_and_is_pareto(
        caps in proptest::collection::vec(0.5f64..100.0, 4..8),
        flows in flows_strategy(4),
    ) {
        let flows: Vec<Vec<usize>> = flows
            .into_iter()
            .map(|f| f.into_iter().filter(|&r| r < caps.len()).collect::<Vec<_>>())
            .filter(|f: &Vec<usize>| !f.is_empty())
            .collect();
        prop_assume!(!flows.is_empty());
        let rates = allocate_rates(&caps, &flows);
        // Feasibility.
        let mut used = vec![0.0; caps.len()];
        for (f, flow) in flows.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            for &r in flow {
                used[r] += rates[f];
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c + 1e-6, "{u} > {c}");
        }
        // Pareto efficiency: every flow crosses a saturated resource.
        for flow in &flows {
            prop_assert!(
                flow.iter().any(|&r| used[r] >= caps[r] - 1e-6),
                "flow {flow:?} could be raised"
            );
        }
    }

    #[test]
    fn maxmin_is_fair_on_shared_bottleneck(
        n in 2usize..10,
        cap in 1.0f64..100.0,
    ) {
        // n identical flows over one resource: all get cap / n.
        let flows = vec![vec![0usize]; n];
        let rates = allocate_rates(&[cap], &flows);
        for r in rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn simulation_conserves_bytes(
        seed in any::<u64>(),
        flow_count in 1usize..12,
    ) {
        let caps = NodeCaps::symmetric(100.0, 50.0);
        let mut sim = Simulator::new(SimConfig::uniform(4, caps));
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut expected = [0.0f64; 4];
        for _ in 0..flow_count {
            let src = (next() % 4) as usize;
            let mut dst = (next() % 4) as usize;
            if dst == src {
                dst = (dst + 1) % 4;
            }
            let bytes = 1 + next() % 500;
            expected[src] += bytes as f64;
            sim.start_flow(FlowSpec::network(src, dst, bytes, Traffic::Repair));
        }
        let mut completions = 0;
        while let Some(ev) = sim.next_event() {
            if matches!(ev, Event::FlowCompleted { .. }) {
                completions += 1;
            }
        }
        prop_assert_eq!(completions, flow_count);
        for node in 0..4 {
            let moved = sim
                .monitor()
                .total_bytes(node, ResourceKind::Uplink, Traffic::Repair);
            prop_assert!(
                (moved - expected[node]).abs() < 1e-3,
                "node {node}: {moved} vs {}",
                expected[node]
            );
        }
        // Monitor never over-reports capacity.
        let caps_vec = vec![caps; 4];
        prop_assert!(sim.monitor().worst_overshoot(&caps_vec) < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn monitor_conserves_bytes_under_random_windows_and_schedules(
        seed in any::<u64>(),
        flow_count in 1usize..12,
        window_decis in 1u32..150,
    ) {
        // The invariant both Monitor window bugfixes protect: whatever the
        // window length (including non-representable ones like 0.1) and
        // however flows are staggered in time, the bytes the monitor
        // attributes across windows equal the bytes the engine delivered.
        let caps = NodeCaps::symmetric(100.0, 50.0);
        let mut cfg = SimConfig::uniform(4, caps);
        cfg.monitor_window_secs = window_decis as f64 * 0.1;
        let mut sim = Simulator::new(cfg);
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut up = [0.0f64; 4];
        let mut down = [0.0f64; 4];
        let mut pending: Vec<(u64, usize, usize, u64)> = Vec::new();
        for i in 0..flow_count {
            let src = (next() % 4) as usize;
            let dst = (src + 1 + (next() % 3) as usize) % 4;
            let bytes = 1 + next() % 5000;
            let delay = next() % 50; // tenths of a second
            up[src] += bytes as f64;
            down[dst] += bytes as f64;
            if delay == 0 {
                sim.start_flow(FlowSpec::network(src, dst, bytes, Traffic::Repair));
            } else {
                sim.schedule_in(delay as f64 * 0.1, i as u64);
                pending.push((i as u64, src, dst, bytes));
            }
        }
        while let Some(ev) = sim.next_event() {
            if let Event::Timer { key, .. } = ev {
                if let Some(pos) = pending.iter().position(|&(k, ..)| k == key) {
                    let (_, src, dst, bytes) = pending.remove(pos);
                    sim.start_flow(FlowSpec::network(src, dst, bytes, Traffic::Repair));
                }
            }
        }
        for node in 0..4 {
            let sent = sim
                .monitor()
                .total_bytes(node, ResourceKind::Uplink, Traffic::Repair);
            prop_assert!(
                (sent - up[node]).abs() < 1e-3,
                "uplink {node}: monitor {sent} vs delivered {}",
                up[node]
            );
            let recv = sim
                .monitor()
                .total_bytes(node, ResourceKind::Downlink, Traffic::Repair);
            prop_assert!(
                (recv - down[node]).abs() < 1e-3,
                "downlink {node}: monitor {recv} vs delivered {}",
                down[node]
            );
        }
        // No window over-reports capacity either.
        let caps_vec = vec![caps; 4];
        prop_assert!(sim.monitor().worst_overshoot(&caps_vec) < 1e-6);
    }

    #[test]
    fn indexed_solver_matches_reference(
        caps in proptest::collection::vec(0.0f64..100.0, 4..10),
        flows in flows_strategy(8),
    ) {
        let flows: Vec<Vec<usize>> = flows
            .into_iter()
            .map(|f| f.into_iter().filter(|&r| r < caps.len()).collect::<Vec<_>>())
            .filter(|f: &Vec<usize>| !f.is_empty())
            .collect();
        prop_assume!(!flows.is_empty());
        let fast = allocate_rates(&caps, &flows);
        let slow = maxmin::reference::allocate_rates(&caps, &flows);
        // The indexed solver performs the same float ops in the same
        // order, so the results are bit-identical, not merely close.
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn engine_matches_reference_on_dynamic_workloads(
        seed in any::<u64>(),
        op_count in 4usize..24,
    ) {
        // A scripted dynamic workload: flows admitted at time zero and via
        // timers as the run unfolds, plus occasional cancellations —
        // exercising the completion heap, the incremental class tables,
        // and lazy remaining-materialization against the reference engine.
        let ops: Vec<(u64, u64, u64, u64, u64)> = {
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            (0..op_count)
                .map(|_| (next(), next(), next(), next(), next()))
                .collect()
        };
        let run = |reference: bool| {
            let mut sim = Simulator::new(SimConfig::uniform(5, NodeCaps::symmetric(40.0, 25.0)));
            sim.use_reference_engine(reference);
            let tags = [Traffic::Foreground, Traffic::Repair, Traffic::Background];
            let mut started = Vec::new();
            let mut pending: Vec<(u64, u64, u64, u64)> = Vec::new();
            for (i, &(delay, src, bytes, tag, cancel)) in ops.iter().enumerate() {
                let delay = delay % 8; // 0..8 tenths of a second
                if delay == 0 {
                    let src = (src % 5) as usize;
                    let dst = (src + 1 + (bytes % 4) as usize) % 5;
                    let spec = FlowSpec::network(src, dst, 1 + bytes % 200, tags[(tag % 3) as usize]);
                    started.push(sim.start_flow(spec));
                } else {
                    sim.schedule_in(delay as f64 * 0.1, i as u64);
                    pending.push((src, bytes, tag, cancel));
                }
            }
            let mut log = Vec::new();
            let mut pending_at = 0usize;
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs()));
                if let Event::Timer { .. } = ev {
                    if pending_at < pending.len() {
                        let (src, bytes, tag, cancel) = pending[pending_at];
                        pending_at += 1;
                        if cancel % 4 == 0 && !started.is_empty() {
                            // Cancel an earlier flow (possibly already done).
                            let victim = started[(cancel as usize / 4) % started.len()];
                            // Round: lazy vs stepwise materialization may
                            // differ in the last ulp of `remaining`.
                            let left = sim.cancel_flow(victim).map(|v| (v * 1e6).round() / 1e6);
                            log.push((format!("cancel {victim} -> {left:?}"), sim.now().as_secs()));
                        } else {
                            let src = (src % 5) as usize;
                            let dst = (src + 1 + (bytes % 4) as usize) % 5;
                            let spec = FlowSpec::network(
                                src,
                                dst,
                                1 + bytes % 200,
                                tags[(tag % 3) as usize],
                            );
                            started.push(sim.start_flow(spec));
                        }
                    }
                }
            }
            // Snapshot the monitor per cell for cross-engine comparison.
            let mut totals = Vec::new();
            for node in 0..5 {
                for kind in ResourceKind::ALL {
                    for tag in Traffic::ALL {
                        totals.push(sim.monitor().total_bytes(node, kind, tag));
                    }
                }
            }
            (log, totals)
        };
        // Events at the same instant are a genuine tie: the reference
        // engine recomputes completion times stepwise at every event while
        // the heap keeps the prediction from the last rate change, so
        // exact ties can resolve in either order at the last ulp.
        // Canonicalize ties (sort within 1e-9 groups) before comparing.
        let canonicalize = |log: &[(String, f64)]| {
            let mut out = log.to_vec();
            let mut i = 0;
            while i < out.len() {
                let mut j = i + 1;
                while j < out.len() && (out[j].1 - out[i].1).abs() < 1e-9 {
                    j += 1;
                }
                out[i..j].sort_by(|a, b| a.0.cmp(&b.0));
                i = j;
            }
            out
        };
        let (fast_log, fast_totals) = run(false);
        let (slow_log, slow_totals) = run(true);
        prop_assert_eq!(fast_log.len(), slow_log.len(), "event counts diverge");
        let fast_log = canonicalize(&fast_log);
        let slow_log = canonicalize(&slow_log);
        for ((ea, ta), (eb, tb)) in fast_log.iter().zip(&slow_log) {
            prop_assert_eq!(ea, eb, "event order diverges");
            prop_assert!((ta - tb).abs() < 1e-9, "event times diverge: {} vs {}", ta, tb);
        }
        for (a, b) in fast_totals.iter().zip(&slow_totals) {
            prop_assert!((a - b).abs() < 1e-3, "monitor bytes diverge: {} vs {}", a, b);
        }
    }

    #[test]
    fn incremental_solve_is_bit_identical_to_full_solve(
        seed in any::<u64>(),
        op_count in 4usize..32,
    ) {
        // The tentpole invariant of the incremental dirty-set solver: after
        // ANY prefix of a randomized admit / complete / cancel / fault /
        // rescale schedule, re-solving only the dirty closure leaves every
        // group rate bit-identical to a from-scratch full solve over the
        // entire live flow set. `verify_against_full_solve` refreshes and
        // asserts bitwise equality (it panics on the first divergence).
        let mut sim = Simulator::new(SimConfig::uniform(6, NodeCaps::symmetric(40.0, 25.0)));
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let tags = [Traffic::Foreground, Traffic::Repair, Traffic::Background];
        let mut started = Vec::new();
        let mut failed = [false; 6];
        for i in 0..op_count {
            match next() % 8 {
                // Mostly admissions: singles and read-and-send customs.
                0..=4 => {
                    let src = (next() % 6) as usize;
                    let dst = (src + 1 + (next() % 5) as usize) % 6;
                    let tag = tags[(next() % 3) as usize];
                    let bytes = 1 + next() % 400;
                    let spec = if next() % 4 == 0 {
                        FlowSpec::custom(
                            bytes,
                            vec![
                                (src, ResourceKind::DiskRead),
                                (src, ResourceKind::Uplink),
                                (dst, ResourceKind::Downlink),
                            ],
                            tag,
                        )
                    } else {
                        FlowSpec::network(src, dst, bytes, tag)
                    };
                    started.push(sim.start_flow(spec));
                }
                5 => {
                    if !started.is_empty() {
                        let victim = started[(next() as usize) % started.len()];
                        let _ = sim.cancel_flow(victim);
                    }
                }
                6 => {
                    let node = (next() % 6) as usize;
                    // Keep at least half the cluster alive.
                    if !failed[node] && failed.iter().filter(|&&f| f).count() < 3 {
                        failed[node] = true;
                        sim.fail_node(node);
                    }
                }
                _ => {
                    let node = (next() % 6) as usize;
                    let net = 0.25 + (next() % 150) as f64 / 100.0;
                    let disk = 0.25 + (next() % 150) as f64 / 100.0;
                    sim.scale_node_caps(node, net, disk);
                }
            }
            // Verify after the mutation itself...
            sim.verify_against_full_solve();
            // ...and after draining a couple of events (completions and
            // aborts dirty resources through a different path).
            if i % 3 == 0 {
                for _ in 0..2 {
                    if sim.next_event().is_none() {
                        break;
                    }
                    sim.verify_against_full_solve();
                }
            }
        }
        while sim.next_event().is_some() {
            sim.verify_against_full_solve();
        }
    }

    #[test]
    fn batched_start_flows_matches_sequential(
        seed in any::<u64>(),
        flow_count in 1usize..16,
    ) {
        let specs: Vec<FlowSpec> = {
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            (0..flow_count)
                .map(|_| {
                    let src = (next() % 4) as usize;
                    let dst = (src + 1 + (next() % 3) as usize) % 4;
                    FlowSpec::network(src, dst, 1 + next() % 300, Traffic::Repair)
                })
                .collect()
        };
        let drain = |sim: &mut Simulator| {
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        let cfg = || SimConfig::uniform(4, NodeCaps::symmetric(20.0, 10.0));
        let mut batched = Simulator::new(cfg());
        batched.start_flows(specs.iter().cloned());
        let mut sequential = Simulator::new(cfg());
        for s in &specs {
            sequential.start_flow(s.clone());
        }
        prop_assert_eq!(drain(&mut batched), drain(&mut sequential));
    }

    /// The differential oracle for the fabric compilation: a flat,
    /// non-oversubscribed topology (one rack, no spine) routes every
    /// flow rack-locally, so even though its ToR link cells exist in the
    /// solver's resource space (and flip the engine into soft-resource
    /// bookkeeping), the event log must be *bitwise* identical to the
    /// rackless engine's — same events, same order, same f64 timestamps.
    #[test]
    fn single_rack_topology_matches_rackless_engine_bitwise(
        seed in any::<u64>(),
        flow_count in 1usize..24,
    ) {
        let nodes = 6;
        let specs: Vec<FlowSpec> = {
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            (0..flow_count)
                .map(|_| {
                    let src = (next() as usize) % nodes;
                    let dst = (src + 1 + (next() as usize) % (nodes - 1)) % nodes;
                    let tag = if next() % 2 == 0 { Traffic::Repair } else { Traffic::Foreground };
                    FlowSpec::network(src, dst, 1 + next() % 500, tag)
                })
                .collect()
        };
        let caps = NodeCaps::symmetric(20.0, 10.0);
        let run = |topology: Option<Topology>| {
            let mut cfg = SimConfig::uniform(nodes, caps);
            cfg.topology = topology;
            let mut sim = Simulator::new(cfg);
            sim.start_flows(specs.iter().cloned());
            let mut log = Vec::new();
            while let Some(ev) = sim.next_event() {
                log.push((format!("{ev:?}"), sim.now().as_secs().to_bits()));
            }
            log
        };
        // Edge-non-blocking ToR: every node's full uplink fits through.
        let flat = Topology::round_robin(nodes, 1, nodes as f64 * caps.uplink,
                                         nodes as f64 * caps.uplink, None);
        prop_assert_eq!(run(None), run(Some(flat)));
    }

    #[test]
    fn simulation_time_is_monotone_and_deterministic(
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig::uniform(3, NodeCaps::symmetric(10.0, 10.0)));
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..6 {
                let src = (next() % 3) as usize;
                let dst = (src + 1 + (next() % 2) as usize) % 3;
                sim.start_flow(FlowSpec::network(src, dst, 1 + next() % 100, Traffic::Repair));
                sim.schedule_in((next() % 10) as f64 * 0.1, next());
            }
            let mut trace = Vec::new();
            let mut last = 0.0;
            while let Some(ev) = sim.next_event() {
                let now = sim.now().as_secs();
                assert!(now >= last, "time went backwards");
                last = now;
                trace.push((format!("{ev:?}"), now.to_bits()));
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
