//! Multi-round failure/repair: after a full-node repair the metadata is
//! updated (chunks relocated to their destinations), the dead node is
//! replaced, and a *second* node failure is repaired against the updated
//! layout — the steady-state life of a production cluster.

mod common;

use std::sync::Arc;

use chameleonec::cluster::Cluster;
use chameleonec::codes::{ErasureCode, ReedSolomon};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairContext, RepairDriver};

use common::tiny_config;

fn repair_round(cluster: &mut Cluster, code: &Arc<dyn ErasureCode>, victim: usize) -> usize {
    cluster.fail_node(victim).unwrap();
    let lost = cluster.lost_chunks(&[victim]);
    let count = lost.len();
    let ctx = RepairContext::new(cluster.clone(), code.clone());
    let mut sim = ctx.cluster.build_simulator();
    let mut driver = ChameleonDriver::new(ctx, ChameleonConfig::default());
    driver.start(&mut sim, lost);
    while let Some(ev) = sim.next_event() {
        driver.on_event(&mut sim, &ev);
    }
    assert!(driver.is_done());
    // Feed the repaired locations back into the metadata.
    for plan in driver.completed_plans() {
        cluster
            .apply_repair(plan.chunk(), plan.destination())
            .unwrap();
    }
    // The node comes back empty (replacement hardware).
    cluster.heal_node(victim);
    count
}

#[test]
fn two_sequential_failures_keep_the_layout_valid() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let mut cluster = Cluster::new(tiny_config(6, 18)).unwrap();

    let first = repair_round(&mut cluster, &code, 0);
    assert!(first > 0);
    assert!(
        cluster.placement().is_valid(),
        "layout broken after round 1"
    );
    // Node 0 is empty now: all its chunks moved elsewhere.
    assert!(cluster.placement().chunks_on(0).is_empty());

    // A different node fails; the repair must work against the *updated*
    // placement (including chunks that moved in round 1).
    let second = repair_round(&mut cluster, &code, 3);
    assert!(second > 0);
    assert!(
        cluster.placement().is_valid(),
        "layout broken after round 2"
    );
    assert!(cluster.placement().chunks_on(3).is_empty());

    // Every stripe still spans n distinct alive nodes.
    for stripe in 0..cluster.placement().stripes() {
        let nodes = cluster.placement().stripe_nodes(stripe);
        let mut uniq: Vec<_> = nodes.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), nodes.len(), "stripe {stripe} collapsed");
        assert!(nodes.iter().all(|&n| cluster.is_alive(n)));
    }
}

#[test]
fn apply_repair_rejects_dead_destination() {
    let mut cluster = Cluster::new(tiny_config(6, 6)).unwrap();
    cluster.fail_node(5).unwrap();
    let chunk = chameleonec::cluster::ChunkId {
        stripe: 0,
        index: 0,
    };
    assert!(cluster.apply_repair(chunk, 5).is_err());
}
