//! End-to-end repair correctness: for every repair algorithm and every
//! code family, the plans a full-node repair executes must reconstruct the
//! lost bytes exactly.

mod common;

use std::sync::Arc;

use chameleonec::codes::{Butterfly, ErasureCode, Lrc, ReedSolomon};
use chameleonec::core::baseline::{PlanShape, StaticRepairDriver};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairContext, RepairDriver};

use common::{encode_all, failed_context, run_driver, tiny_config, verify_plan_bytes};

fn check_static(ctx: RepairContext, code: Arc<dyn ErasureCode>, shape: PlanShape, boosted: bool) {
    let stripes = ctx.cluster.placement().stripes();
    let chunk_len = ctx.chunk_size() as usize;
    let data = encode_all(code.as_ref(), stripes, chunk_len);
    let expected_chunks: usize = ctx
        .cluster
        .failed_nodes()
        .map(|n| ctx.cluster.placement().chunks_on(n).len())
        .sum();
    let mut driver = if boosted {
        StaticRepairDriver::boosted(ctx.clone(), shape, 42)
    } else {
        StaticRepairDriver::new(ctx.clone(), shape, 42)
    };
    let (outcome, _sim) = run_driver(&ctx, &mut driver);
    assert_eq!(
        outcome.chunks_repaired,
        expected_chunks,
        "{}",
        driver.name()
    );
    for plan in driver.completed_plans() {
        verify_plan_bytes(code.as_ref(), &data, plan);
    }
}

fn check_chameleon(ctx: RepairContext, code: Arc<dyn ErasureCode>, config: ChameleonConfig) {
    let stripes = ctx.cluster.placement().stripes();
    let chunk_len = ctx.chunk_size() as usize;
    let data = encode_all(code.as_ref(), stripes, chunk_len);
    let expected_chunks: usize = ctx
        .cluster
        .failed_nodes()
        .map(|n| ctx.cluster.placement().chunks_on(n).len())
        .sum();
    let mut driver = ChameleonDriver::new(ctx.clone(), config);
    let (outcome, _sim) = run_driver(&ctx, &mut driver);
    assert_eq!(
        outcome.chunks_repaired,
        expected_chunks,
        "{}",
        driver.name()
    );
    for plan in driver.completed_plans() {
        verify_plan_bytes(code.as_ref(), &data, plan);
    }
}

#[test]
fn rs_repair_bytes_cr_ppr_ecpipe() {
    for shape in [PlanShape::Star, PlanShape::Tree, PlanShape::Chain] {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
        let ctx = failed_context(code.clone(), tiny_config(6, 12), &[0]);
        check_static(ctx, code, shape, false);
    }
}

#[test]
fn rs_repair_bytes_repairboost_variants() {
    for shape in [PlanShape::Star, PlanShape::Chain] {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
        let ctx = failed_context(code.clone(), tiny_config(6, 12), &[0]);
        check_static(ctx, code, shape, true);
    }
}

#[test]
fn rs_repair_bytes_chameleon() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 12), &[0]);
    check_chameleon(ctx, code, ChameleonConfig::default());
}

#[test]
fn rs_10_4_chameleon_full_width() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(10, 4).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(14, 8), &[3]);
    check_chameleon(ctx, code, ChameleonConfig::default());
}

#[test]
fn lrc_repair_bytes_all_algorithms() {
    let code: Arc<dyn ErasureCode> = Arc::new(Lrc::new(4, 2, 2).unwrap());
    for shape in [PlanShape::Star, PlanShape::Tree, PlanShape::Chain] {
        let ctx = failed_context(code.clone(), tiny_config(8, 10), &[1]);
        check_static(ctx, code.clone(), shape, false);
    }
    let ctx = failed_context(code.clone(), tiny_config(8, 10), &[1]);
    check_chameleon(ctx, code, ChameleonConfig::default());
}

#[test]
fn butterfly_repair_bytes() {
    let code: Arc<dyn ErasureCode> = Arc::new(Butterfly::new());
    let ctx = failed_context(code.clone(), tiny_config(4, 10), &[2]);
    check_static(ctx, code.clone(), PlanShape::Star, false);
    let ctx = failed_context(code.clone(), tiny_config(4, 10), &[2]);
    check_chameleon(ctx, code, ChameleonConfig::default());
}

#[test]
fn multi_node_failure_repair_bytes() {
    // Two failed nodes with RS(4,2): every stripe still repairable.
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 16), &[0, 5]);
    check_chameleon(ctx, code, ChameleonConfig::default());
}

#[test]
fn io_variant_repair_bytes() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 10), &[0]);
    check_chameleon(ctx, code, ChameleonConfig::io());
}

#[test]
fn repaired_stripes_keep_fault_tolerance() {
    // After repair, each chunk's destination must not collide with the
    // stripe's surviving nodes (the stripe still spans n distinct nodes).
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 12), &[0]);
    let mut driver = ChameleonDriver::new(ctx.clone(), ChameleonConfig::default());
    let (_, _) = run_driver(&ctx, &mut driver);
    for plan in driver.completed_plans() {
        let stripe_nodes = ctx.cluster.placement().stripe_nodes(plan.chunk().stripe);
        assert!(
            !stripe_nodes.contains(&plan.destination()),
            "destination collides with stripe"
        );
    }
}
