//! Straggler injection (the Exp#11 scenario): a node participating in the
//! repair suddenly loses bandwidth to background "hog" flows; ChameleonEC's
//! straggler-aware re-scheduling must react and still finish correctly.

mod common;

use std::sync::Arc;

use chameleonec::codes::{ErasureCode, ReedSolomon};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairContext, RepairDriver, RepairOutcome};
use chameleonec::simnet::{FlowSpec, Traffic};

use common::{encode_all, failed_context, tiny_config, verify_plan_bytes};

/// Runs a Chameleon repair; after `delay` seconds, floods `victim`'s
/// uplink and downlink with `hogs` large background flows.
fn run_with_straggler(
    ctx: &RepairContext,
    config: ChameleonConfig,
    victim: usize,
    hogs: usize,
    delay: f64,
) -> (RepairOutcome, ChameleonDriver) {
    let mut sim = ctx.cluster.build_simulator();
    let lost: Vec<_> = ctx
        .cluster
        .failed_nodes()
        .flat_map(|n| ctx.cluster.placement().chunks_on(n))
        .collect();
    let mut driver = ChameleonDriver::new(ctx.clone(), config);
    driver.start(&mut sim, lost);
    let hog_timer = sim.schedule_in(delay, 99);
    let other = (victim + 1) % ctx.cluster.storage_nodes();
    while let Some(ev) = sim.next_event() {
        if let chameleonec::simnet::Event::Timer { id, .. } = ev {
            if id == hog_timer {
                for _ in 0..hogs {
                    // Large but finite hogs through both directions.
                    sim.start_flow(FlowSpec::network(
                        victim,
                        other,
                        512 << 20,
                        Traffic::Background,
                    ));
                    sim.start_flow(FlowSpec::network(
                        other,
                        victim,
                        512 << 20,
                        Traffic::Background,
                    ));
                }
                continue;
            }
        }
        driver.on_event(&mut sim, &ev);
        if driver.is_done() {
            break;
        }
    }
    assert!(driver.is_done(), "repair never finished under straggler");
    (driver.outcome(&sim), driver)
}

#[test]
fn repair_survives_a_straggler_and_stays_correct() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 10), &[0]);
    let data = encode_all(
        code.as_ref(),
        ctx.cluster.placement().stripes(),
        ctx.chunk_size() as usize,
    );
    // Hog a node likely to participate (node 1 holds stripe chunks).
    let (outcome, driver) = run_with_straggler(&ctx, ChameleonConfig::default(), 1, 6, 0.5);
    assert_eq!(
        outcome.chunks_repaired,
        ctx.cluster.placement().chunks_on(0).len()
    );
    for plan in driver.completed_plans() {
        verify_plan_bytes(code.as_ref(), &data, plan);
    }
}

#[test]
fn sar_reacts_to_stragglers() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    // A contended, slow cluster so the straggler bites mid-repair.
    let mut cfg = common::contended_config(6, 60);
    cfg.chunk_size = 1 << 20;
    cfg.slice_size = 256 * 1024;
    let (ctx, victim) = common::failed_context_busiest(code.clone(), cfg);
    let config = ChameleonConfig {
        check_interval_secs: 0.05,
        straggler_min_delay_secs: 0.1,
        straggler_progress_ratio: 0.9,
        ..ChameleonConfig::default()
    };
    // Hog a *surviving* node so it appears as a straggling participant.
    let hog_node = (victim + 1) % ctx.cluster.storage_nodes();
    let (_, driver) = run_with_straggler(&ctx, config, hog_node, 16, 0.05);
    let stats = driver.stats();
    assert!(
        stats.retunes + stats.reorders > 0,
        "SAR never fired: {stats:?}"
    );
}

#[test]
fn etrp_without_sar_never_retunes() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code.clone(), tiny_config(6, 8), &[0]);
    let (_, driver) = run_with_straggler(&ctx, ChameleonConfig::etrp_only(), 1, 8, 0.2);
    let stats = driver.stats();
    assert_eq!(stats.retunes, 0);
    assert_eq!(stats.reorders, 0);
}

#[test]
fn sar_helps_or_matches_under_heavy_straggler() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let mk = || failed_context(code.clone(), tiny_config(6, 12), &[0]);

    let config_sar = ChameleonConfig {
        check_interval_secs: 0.25,
        straggler_min_delay_secs: 0.5,
        ..ChameleonConfig::default()
    };
    let (with_sar, _) = run_with_straggler(&mk(), config_sar, 1, 10, 0.2);

    let config_etrp = ChameleonConfig {
        check_interval_secs: 0.25,
        straggler_min_delay_secs: 0.5,
        ..ChameleonConfig::etrp_only()
    };
    let (without, _) = run_with_straggler(&mk(), config_etrp, 1, 10, 0.2);

    // SAR should not be substantially worse (the paper reports it strictly
    // better; at tiny scale we allow 10% noise).
    assert!(
        with_sar.duration.unwrap() <= without.duration.unwrap() * 1.10,
        "SAR {:.2}s vs ETRP {:.2}s",
        with_sar.duration.unwrap(),
        without.duration.unwrap()
    );
}
