//! Crash-recovery correctness: a helper (or data-holding) node crash at a
//! seeded instant mid-campaign must still yield byte-identical
//! reconstruction after re-planning — including the cascaded two-erasure
//! case where the crashed node held stripe data of its own.

mod common;

use std::sync::Arc;

use chameleonec::codes::{Butterfly, ErasureCode, Lrc, ReedSolomon};
use chameleonec::core::baseline::{PlanShape, StaticRepairDriver};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairContext, RepairDriver, RepairOutcome};
use chameleonec::simnet::{FaultPlan, FaultSpec};

use common::{
    encode_all, failed_context, run_driver, run_driver_with_faults, tiny_config, verify_plan_bytes,
};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The alive storage node sharing the most stripes with `victim` — crashing
/// it mid-repair turns those stripes into two-erasure repairs.
fn crash_partner(ctx: &RepairContext, victim: usize) -> usize {
    let placement = ctx.cluster.placement();
    (0..ctx.cluster.storage_nodes())
        .filter(|&n| n != victim)
        .max_by_key(|&n| {
            (0..placement.stripes())
                .filter(|&s| {
                    let nodes = placement.stripe_nodes(s);
                    nodes.contains(&n) && nodes.contains(&victim)
                })
                .count()
        })
        .expect("a partner node exists")
}

/// A crash instant seeded inside the fault-free campaign's duration.
fn seeded_crash_at(fault_free: &RepairOutcome, seed: u64) -> f64 {
    let duration = fault_free.duration.expect("fault-free run finishes");
    duration * (0.15 + 0.45 * unit(mix(seed)))
}

struct CrashRun {
    outcome: RepairOutcome,
    /// Did any verified plan repair a chunk on the crashed node in a stripe
    /// that also held the original victim (a cascaded two-erasure repair)?
    cascaded: bool,
}

/// Shared scenario: fail `victim`, measure the fault-free campaign, then
/// re-run with `partner` crashing at a seeded instant. Every completed plan
/// must reconstruct the lost bytes exactly.
fn run_crash_scenario<D, F, P>(
    code: Arc<dyn ErasureCode>,
    ctx: &RepairContext,
    victim: usize,
    seed: u64,
    make_driver: F,
    plans_of: P,
) -> CrashRun
where
    D: RepairDriver,
    F: Fn() -> D,
    P: Fn(&D) -> &[chameleonec::core::RepairPlan],
{
    let placement = ctx.cluster.placement();
    let chunk_len = ctx.chunk_size() as usize;
    let data = encode_all(code.as_ref(), placement.stripes(), chunk_len);
    let initial_chunks = placement.chunks_on(victim).len();
    let partner = crash_partner(ctx, victim);

    let mut dry = make_driver();
    let (fault_free, _) = run_driver(ctx, &mut dry);
    let at_secs = seeded_crash_at(&fault_free, seed);
    let faults = FaultPlan::new(vec![FaultSpec::Crash {
        node: partner,
        at_secs,
    }]);

    let mut driver = make_driver();
    let (outcome, _) = run_driver_with_faults(ctx, &mut driver, &faults);
    assert!(
        outcome.chunks_total > initial_chunks,
        "the crash must enqueue the partner's chunks"
    );
    let mut cascaded = false;
    let mut verified = 0usize;
    for plan in plans_of(&driver) {
        verify_plan_bytes(code.as_ref(), &data, plan);
        verified += 1;
        let stripe = plan.chunk().stripe;
        if placement.node_of(plan.chunk()) == partner
            && placement.stripe_nodes(stripe).contains(&victim)
        {
            cascaded = true;
        }
    }
    assert_eq!(verified, outcome.chunks_repaired, "one plan per repair");
    CrashRun { outcome, cascaded }
}

fn assert_replanned(scenario: &str, runs: &[CrashRun]) {
    let replans: usize = runs.iter().map(|r| r.outcome.recovery.replans).sum();
    assert!(
        replans >= 1,
        "{scenario}: no seeded crash ever interrupted an in-flight attempt"
    );
}

#[test]
fn rs_recovery_static_star_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let mut runs = Vec::new();
    for seed in [1u64, 2, 3] {
        let ctx = failed_context(code.clone(), tiny_config(6, 24), &[0]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            0,
            seed,
            || StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 42),
            StaticRepairDriver::completed_plans,
        );
        // RS(4,2) tolerates the second erasure: nothing is abandoned.
        assert_eq!(
            run.outcome.chunks_repaired, run.outcome.chunks_total,
            "seed {seed}: RS(4,2) repairs every chunk despite the crash"
        );
        runs.push(run);
    }
    assert_replanned("rs static star", &runs);
    assert!(
        runs.iter().any(|r| r.cascaded),
        "no run exercised a cascaded two-erasure repair"
    );
}

#[test]
fn rs_recovery_boosted_chain_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let mut runs = Vec::new();
    for seed in [1u64, 2, 3] {
        let ctx = failed_context(code.clone(), tiny_config(6, 24), &[0]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            0,
            seed,
            || StaticRepairDriver::boosted(ctx.clone(), PlanShape::Chain, 42),
            StaticRepairDriver::completed_plans,
        );
        assert_eq!(run.outcome.chunks_repaired, run.outcome.chunks_total);
        runs.push(run);
    }
    assert_replanned("rs boosted chain", &runs);
}

#[test]
fn rs_recovery_chameleon_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let mut runs = Vec::new();
    for seed in [1u64, 2, 3] {
        let ctx = failed_context(code.clone(), tiny_config(6, 24), &[0]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            0,
            seed,
            || ChameleonDriver::new(ctx.clone(), ChameleonConfig::default()),
            ChameleonDriver::completed_plans,
        );
        assert_eq!(
            run.outcome.chunks_repaired, run.outcome.chunks_total,
            "seed {seed}: RS(4,2) repairs every chunk despite the crash"
        );
        runs.push(run);
    }
    assert_replanned("rs chameleon", &runs);
    assert!(
        runs.iter().any(|r| r.cascaded),
        "no run exercised a cascaded two-erasure repair"
    );
}

#[test]
fn lrc_recovery_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(Lrc::new(4, 2, 2).unwrap());
    let mut runs = Vec::new();
    for seed in [1u64, 2] {
        let ctx = failed_context(code.clone(), tiny_config(8, 20), &[1]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            1,
            seed,
            || ChameleonDriver::new(ctx.clone(), ChameleonConfig::default()),
            ChameleonDriver::completed_plans,
        );
        // LRC may legitimately skip a chunk whose stripe lost more than the
        // local group tolerates; everything repaired must still verify.
        assert!(run.outcome.chunks_repaired > 0);
        runs.push(run);
    }
    assert_replanned("lrc chameleon", &runs);
}

#[test]
fn lrc_recovery_static_tree_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(Lrc::new(4, 2, 2).unwrap());
    let mut runs = Vec::new();
    for seed in [1u64, 2] {
        let ctx = failed_context(code.clone(), tiny_config(8, 20), &[1]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            1,
            seed,
            || StaticRepairDriver::new(ctx.clone(), PlanShape::Tree, 42),
            StaticRepairDriver::completed_plans,
        );
        assert!(run.outcome.chunks_repaired > 0);
        runs.push(run);
    }
    assert_replanned("lrc static tree", &runs);
}

#[test]
fn butterfly_recovery_replans_byte_identical() {
    let code: Arc<dyn ErasureCode> = Arc::new(Butterfly::new());
    let mut runs = Vec::new();
    for seed in [1u64, 2, 3] {
        let ctx = failed_context(code.clone(), tiny_config(4, 16), &[2]);
        let run = run_crash_scenario(
            code.clone(),
            &ctx,
            2,
            seed,
            || ChameleonDriver::new(ctx.clone(), ChameleonConfig::default()),
            ChameleonDriver::completed_plans,
        );
        assert!(run.outcome.chunks_repaired > 0);
        runs.push(run);
    }
    assert_replanned("butterfly chameleon", &runs);
}
