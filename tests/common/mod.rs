//! Shared helpers for the cross-crate integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use std::sync::Arc;

use chameleonec::cluster::{Cluster, ClusterConfig};
use chameleonec::codes::ErasureCode;
use chameleonec::core::{RepairContext, RepairDriver, RepairOutcome};
use chameleonec::gf::mul_add_slice;
use chameleonec::simnet::Simulator;

/// A tiny cluster configuration for byte-level tests (small chunks keep
/// simulations fast).
pub fn tiny_config(stripe_width: usize, stripes: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(stripe_width);
    cfg.chunk_size = 256 * 1024;
    cfg.slice_size = 64 * 1024;
    cfg.stripes = stripes;
    cfg
}

/// A throttled configuration where repair and foreground genuinely
/// contend: 125 MB/s links (1 Gb/s) and 50 MB/s disks, 4 MB chunks.
pub fn contended_config(stripe_width: usize, stripes: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(stripe_width);
    cfg.node_caps = chameleonec::simnet::NodeCaps::symmetric(125e6, 50e6);
    cfg.chunk_size = 4 << 20;
    cfg.slice_size = 1 << 20;
    cfg.stripes = stripes;
    cfg
}

/// The storage node holding the most chunks — a victim guaranteed to lose
/// data when failed.
pub fn busiest_node(cluster: &Cluster) -> usize {
    (0..cluster.storage_nodes())
        .max_by_key(|&n| cluster.placement().chunks_on(n).len())
        .expect("nodes exist")
}

/// Deterministic stripe data: `stripes x k` data chunks, then encoded.
pub fn encode_all(code: &dyn ErasureCode, stripes: usize, chunk_len: usize) -> Vec<Vec<Vec<u8>>> {
    (0..stripes)
        .map(|s| {
            let data: Vec<Vec<u8>> = (0..code.k())
                .map(|i| {
                    (0..chunk_len)
                        .map(|j| ((s * 131 + i * 31 + j * 7) % 251) as u8)
                        .collect()
                })
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|c| c.as_slice()).collect();
            code.encode(&refs).expect("encode")
        })
        .collect()
}

/// Runs a repair driver to completion against an otherwise idle cluster.
pub fn run_driver(
    ctx: &RepairContext,
    driver: &mut dyn RepairDriver,
) -> (RepairOutcome, Simulator) {
    let mut sim = ctx.cluster.build_simulator();
    let lost: Vec<_> = ctx
        .cluster
        .failed_nodes()
        .flat_map(|n| ctx.cluster.placement().chunks_on(n))
        .collect();
    driver.start(&mut sim, lost);
    let mut guard = 0u64;
    while let Some(ev) = sim.next_event() {
        driver.on_event(&mut sim, &ev);
        guard += 1;
        assert!(guard < 50_000_000, "simulation runaway");
    }
    assert!(driver.is_done(), "driver did not finish");
    (driver.outcome(&sim), sim)
}

/// Like [`run_driver`], but with a fault plan injected: fault events are
/// applied to the simulator and forwarded to the driver's `on_fault`.
pub fn run_driver_with_faults(
    ctx: &RepairContext,
    driver: &mut dyn RepairDriver,
    faults: &chameleonec::simnet::FaultPlan,
) -> (RepairOutcome, Simulator) {
    let mut sim = ctx.cluster.build_simulator();
    let mut injector = faults.inject(&mut sim);
    let lost: Vec<_> = ctx
        .cluster
        .failed_nodes()
        .flat_map(|n| ctx.cluster.placement().chunks_on(n))
        .collect();
    driver.start(&mut sim, lost);
    let mut guard = 0u64;
    while let Some(ev) = sim.next_event() {
        if let Some(fault) = injector.on_event(&mut sim, &ev) {
            driver.on_fault(&mut sim, &fault);
            continue;
        }
        driver.on_event(&mut sim, &ev);
        guard += 1;
        assert!(guard < 50_000_000, "simulation runaway");
    }
    assert!(driver.is_done(), "driver did not finish under faults");
    (driver.outcome(&sim), sim)
}

/// Verifies that an executed plan reconstructs the failed chunk's bytes:
/// relayable plans must satisfy `sum coeff_i * chunk_i == failed`;
/// sub-chunk plans must name a source set from which the code's own repair
/// reproduces the chunk.
pub fn verify_plan_bytes(
    code: &dyn ErasureCode,
    stripe_data: &[Vec<Vec<u8>>],
    plan: &chameleonec::core::RepairPlan,
) {
    let chunk = plan.chunk();
    let stripe = &stripe_data[chunk.stripe];
    let expected = &stripe[chunk.index];
    let source_indices: Vec<usize> = plan.participants().iter().map(|p| p.chunk_index).collect();
    let relayable = plan
        .participants()
        .iter()
        .all(|p| (p.read_fraction - 1.0).abs() < 1e-12)
        && code
            .repair_coefficients(chunk.index, &source_indices)
            .is_ok();
    if relayable {
        let mut out = vec![0u8; expected.len()];
        for p in plan.participants() {
            mul_add_slice(p.coeff, &stripe[p.chunk_index], &mut out);
        }
        assert_eq!(
            &out, expected,
            "plan coefficients do not reconstruct stripe {} chunk {}",
            chunk.stripe, chunk.index
        );
    } else {
        let inputs: Vec<(usize, &[u8])> = plan
            .participants()
            .iter()
            .map(|p| (p.chunk_index, stripe[p.chunk_index].as_slice()))
            .collect();
        let got = code.repair(chunk.index, &inputs).expect("repair");
        assert_eq!(
            &got, expected,
            "sub-chunk sources cannot repair stripe {} chunk {}",
            chunk.stripe, chunk.index
        );
    }
}

/// Convenience: build a context over a cluster with one failed node.
pub fn failed_context(
    code: Arc<dyn ErasureCode>,
    cfg: ClusterConfig,
    victims: &[usize],
) -> RepairContext {
    let mut cluster = Cluster::new(cfg).expect("cluster");
    for &v in victims {
        cluster.fail_node(v).expect("fail node");
    }
    RepairContext::new(cluster, code)
}

/// Builds a context failing the node that holds the most chunks; returns
/// the context and the victim's id.
pub fn failed_context_busiest(
    code: Arc<dyn ErasureCode>,
    cfg: ClusterConfig,
) -> (RepairContext, usize) {
    let mut cluster = Cluster::new(cfg).expect("cluster");
    let victim = busiest_node(&cluster);
    cluster.fail_node(victim).expect("fail node");
    (RepairContext::new(cluster, code), victim)
}
