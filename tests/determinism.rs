//! Reproducibility: identical seeds and configurations must produce
//! bit-identical experiment results — the property that makes the
//! benchmark harness trustworthy.

mod common;

use std::sync::Arc;

use chameleonec::cluster::ForegroundDriver;
use chameleonec::codes::{ErasureCode, ReedSolomon};
use chameleonec::core::baseline::{PlanShape, StaticRepairDriver};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairDriver, RepairOutcome};
use chameleonec::traces::{Workload, YcsbA};

use common::{failed_context, tiny_config};

fn one_run(seed: u64) -> (RepairOutcome, f64) {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let ctx = failed_context(code, tiny_config(6, 8), &[0]);
    let mut sim = ctx.cluster.build_simulator();
    let lost = ctx.cluster.placement().chunks_on(0);
    let workloads: Vec<Box<dyn Workload>> = (0..2)
        .map(|i| Box::new(YcsbA::new(seed + i)) as Box<dyn Workload>)
        .collect();
    let mut fg = ForegroundDriver::new(workloads, 150);
    fg.start(&ctx.cluster, &mut sim);
    let mut driver = StaticRepairDriver::new(ctx.clone(), PlanShape::Tree, seed);
    driver.start(&mut sim, lost);
    while let Some(ev) = sim.next_event() {
        if !driver.on_event(&mut sim, &ev) {
            fg.on_event(&ctx.cluster, &mut sim, &ev);
        }
    }
    (driver.outcome(&sim), fg.report(&sim).p99_latency)
}

#[test]
fn identical_seeds_give_identical_results() {
    let (a, p99_a) = one_run(11);
    let (b, p99_b) = one_run(11);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.per_chunk_secs, b.per_chunk_secs);
    assert_eq!(p99_a.to_bits(), p99_b.to_bits());
}

#[test]
fn different_seeds_change_the_schedule() {
    let (a, _) = one_run(11);
    let (b, _) = one_run(12);
    // Plans are randomized per seed; timings should differ somewhere.
    assert_ne!(a.per_chunk_secs, b.per_chunk_secs);
}

#[test]
fn chameleon_runs_are_reproducible() {
    let run = || {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
        let ctx = failed_context(code, tiny_config(6, 8), &[0]);
        let mut sim = ctx.cluster.build_simulator();
        let lost = ctx.cluster.placement().chunks_on(0);
        let mut driver = ChameleonDriver::new(ctx, ChameleonConfig::default());
        driver.start(&mut sim, lost);
        while let Some(ev) = sim.next_event() {
            driver.on_event(&mut sim, &ev);
        }
        driver.outcome(&sim)
    };
    let a = run();
    let b = run();
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.per_chunk_secs, b.per_chunk_secs);
}
