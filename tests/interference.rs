//! Repair/foreground interference behaviour (the phenomenon of §II-D):
//! foreground traffic slows repair down, and ChameleonEC handles the
//! contention at least as well as conventional repair.

mod common;

use std::sync::Arc;

use chameleonec::cluster::{ForegroundDriver, ForegroundReport};
use chameleonec::codes::{ErasureCode, ReedSolomon};
use chameleonec::core::baseline::{PlanShape, StaticRepairDriver};
use chameleonec::core::chameleon::{ChameleonConfig, ChameleonDriver};
use chameleonec::core::{RepairContext, RepairDriver, RepairOutcome};
use chameleonec::traces::{Workload, YcsbA};

use common::{contended_config, failed_context, failed_context_busiest};

/// Runs a repair concurrently with `clients` YCSB clients; returns the
/// repair outcome and foreground report.
fn run_with_foreground(
    ctx: &RepairContext,
    driver: &mut dyn RepairDriver,
    clients: usize,
    requests_per_client: usize,
) -> (RepairOutcome, ForegroundReport) {
    let mut sim = ctx.cluster.build_simulator();
    let lost: Vec<_> = ctx
        .cluster
        .failed_nodes()
        .flat_map(|n| ctx.cluster.placement().chunks_on(n))
        .collect();
    assert!(!lost.is_empty(), "victim held no chunks");
    let workloads: Vec<Box<dyn Workload>> = (0..clients)
        .map(|i| Box::new(YcsbA::new(1000 + i as u64)) as Box<dyn Workload>)
        .collect();
    let mut fg = ForegroundDriver::new(workloads, requests_per_client);
    fg.start(&ctx.cluster, &mut sim);
    driver.start(&mut sim, lost);
    while let Some(ev) = sim.next_event() {
        if driver.on_event(&mut sim, &ev) {
            continue;
        }
        fg.on_event(&ctx.cluster, &mut sim, &ev);
    }
    assert!(driver.is_done(), "repair did not finish");
    assert!(fg.is_done(), "foreground did not finish");
    (driver.outcome(&sim), fg.report(&sim))
}

#[test]
fn foreground_traffic_slows_repair_down() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    // Enough concurrent client machines that contention is a physical
    // certainty rather than an artifact of where one RNG stream happens to
    // land the hot keys (each client machine has one request in flight).
    let mut cfg = contended_config(6, 30);
    cfg.clients = 12;
    let (ctx, _) = failed_context_busiest(code.clone(), cfg);

    let mut idle_driver = StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 7);
    let (idle, _) = run_with_foreground(&ctx, &mut idle_driver, 0, 0);

    let mut busy_driver = StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 7);
    let (busy, _) = run_with_foreground(&ctx, &mut busy_driver, 12, 2000);

    assert!(
        busy.duration.unwrap() > idle.duration.unwrap() * 1.02,
        "interference should prolong repair: idle {:?} busy {:?}",
        idle.duration,
        busy.duration
    );
}

#[test]
fn repair_prolongs_foreground_latency() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());

    // Foreground only (no failed node).
    let ctx_clean = failed_context(code.clone(), contended_config(6, 30), &[]);
    let mut sim = ctx_clean.cluster.build_simulator();
    let workloads: Vec<Box<dyn Workload>> = (0..2)
        .map(|i| Box::new(YcsbA::new(1000 + i as u64)) as Box<dyn Workload>)
        .collect();
    let mut fg = ForegroundDriver::new(workloads, 500);
    fg.start(&ctx_clean.cluster, &mut sim);
    while let Some(ev) = sim.next_event() {
        fg.on_event(&ctx_clean.cluster, &mut sim, &ev);
    }
    let clean = fg.report(&sim);

    // Foreground + CR repair.
    let (ctx, _) = failed_context_busiest(code.clone(), contended_config(6, 30));
    let mut driver = StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 7);
    let (_, contended) = run_with_foreground(&ctx, &mut driver, 2, 500);

    assert!(
        contended.p99_latency > clean.p99_latency,
        "repair should inflate foreground P99: {} vs {}",
        contended.p99_latency,
        clean.p99_latency
    );
}

#[test]
fn chameleon_is_competitive_under_interference() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());

    let (ctx, _) = failed_context_busiest(code.clone(), contended_config(6, 30));
    let mut cr = StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 7);
    let (cr_out, _) = run_with_foreground(&ctx, &mut cr, 3, 800);

    let (ctx, _) = failed_context_busiest(code.clone(), contended_config(6, 30));
    let mut cham = ChameleonDriver::new(ctx.clone(), ChameleonConfig::default());
    let (cham_out, _) = run_with_foreground(&ctx, &mut cham, 3, 800);

    // ChameleonEC should not lose badly to CR under contention (the paper
    // reports consistent wins; we assert a conservative bound to keep the
    // test robust at tiny scale).
    assert!(
        cham_out.throughput() >= cr_out.throughput() * 0.8,
        "ChameleonEC {:.1} vs CR {:.1} bytes/s",
        cham_out.throughput(),
        cr_out.throughput()
    );
}

#[test]
fn repair_and_foreground_bytes_are_accounted_separately() {
    use chameleonec::simnet::{ResourceKind, Traffic};
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2).unwrap());
    let (ctx, victim) = failed_context_busiest(code.clone(), contended_config(6, 20));
    let mut sim = ctx.cluster.build_simulator();
    let lost = ctx.cluster.placement().chunks_on(victim);
    let workloads: Vec<Box<dyn Workload>> = vec![Box::new(YcsbA::new(3)) as Box<dyn Workload>];
    let mut fg = ForegroundDriver::new(workloads, 100);
    fg.start(&ctx.cluster, &mut sim);
    let mut driver = StaticRepairDriver::new(ctx.clone(), PlanShape::Star, 7);
    driver.start(&mut sim, lost.clone());
    while let Some(ev) = sim.next_event() {
        if !driver.on_event(&mut sim, &ev) {
            fg.on_event(&ctx.cluster, &mut sim, &ev);
        }
    }
    let m = sim.monitor();
    let mut repair_down = 0.0;
    let mut fg_down = 0.0;
    for node in 0..sim.node_count() {
        repair_down += m.total_bytes(node, ResourceKind::Downlink, Traffic::Repair);
        fg_down += m.total_bytes(node, ResourceKind::Downlink, Traffic::Foreground);
    }
    // Repair moved k chunks per lost chunk over the network.
    let expected_repair = lost.len() as f64 * 4.0 * ctx.chunk_size() as f64;
    assert!(
        (repair_down - expected_repair).abs() / expected_repair < 0.01,
        "repair bytes {repair_down} vs expected {expected_repair}"
    );
    assert!((fg_down - fg.report(&sim).total_bytes).abs() < 1.0);
}
