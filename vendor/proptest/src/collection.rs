//! Collection strategies: `vec` and `btree_set`.

use core::ops::{Range, RangeInclusive};
use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = self.hi - self.lo + 1;
        self.lo + (rng.next_u64() % span as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `BTreeSet`s with a size in `size` (best effort: if the element
/// domain is too small to reach the drawn size, a smaller set results).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let want = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Bounded retries: tiny element domains cannot fill large sets.
        let mut attempts = 0usize;
        while set.len() < want && attempts < want * 64 + 64 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_bounds() {
        let s = vec(any::<u8>(), 3..7);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_vec() {
        let s = vec(0.0f64..1.0, 20);
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!(s.new_value(&mut rng).len(), 20);
    }

    #[test]
    fn btree_set_is_bounded_and_in_domain() {
        let s = btree_set(0usize..5, 1..=3);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let set = s.new_value(&mut rng);
            assert!(!set.is_empty() && set.len() <= 3);
            assert!(set.iter().all(|&x| x < 5));
        }
    }
}
