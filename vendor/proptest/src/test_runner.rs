//! Case execution: configuration, RNG, and the pass/fail/reject protocol.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejection: the inputs don't apply; draw new ones.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The deterministic generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's name so every
/// test explores a different (but fully reproducible) part of the space.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Runs up to `config.cases` generated cases of `case`, panicking on the
/// first failure with the generated inputs included in the message.
///
/// `case` returns the body outcome plus a rendering of the generated inputs
/// for diagnostics. Rejected cases (via `prop_assume!`) are re-drawn and do
/// not count toward the case budget; too many consecutive rejects abort.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut draw = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(draw));
        draw += 1;
        let (outcome, inputs) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}); \
                     prop_assume! conditions are unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "{name}: property failed after {passed} passing case(s)\n\
                     {reason}\ninputs:{inputs}\n"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn run_cases_counts_passes() {
        let mut calls = 0;
        run_cases("demo", &ProptestConfig::with_cases(10), |_| {
            calls += 1;
            (Ok(()), String::new())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    fn rejects_are_redrawn() {
        let mut calls = 0u32;
        run_cases("demo_reject", &ProptestConfig::with_cases(5), |rng| {
            calls += 1;
            if rng.next_u64() % 2 == 0 {
                (Err(TestCaseError::reject("odd only")), String::new())
            } else {
                (Ok(()), String::new())
            }
        });
        assert!(calls >= 5);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        run_cases("demo_fail", &ProptestConfig::with_cases(5), |_| {
            (Err(TestCaseError::fail("nope")), "\n    x = 1".into())
        });
    }
}
