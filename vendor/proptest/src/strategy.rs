//! Value-generation strategies.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 64) as i32 - 32;
        mantissa * (exp as f64).exp2()
    }
}

/// The canonical strategy for a type: `any::<u64>()`, `any::<bool>()`, ….
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
