//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace cannot reach a crates.io
//! registry, so this vendored crate implements the subset of the `proptest`
//! API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - [`strategy::Strategy`] with `prop_map`, `any::<T>()`, numeric-range
//!   strategies, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test name (fully deterministic across runs and machines), and there
//! is **no shrinking** — a failure reports the exact generated inputs
//! instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines a block of property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::new_value(
                                &($strat),
                                __proptest_rng,
                            );
                        )*
                        let __proptest_inputs = {
                            let mut s = ::std::string::String::new();
                            $(
                                s.push_str(&::std::format!(
                                    "\n    {} = {:?}",
                                    stringify!($arg),
                                    &$arg
                                ));
                            )*
                            s
                        };
                        let outcome = (|| -> ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        (outcome, __proptest_inputs)
                    },
                );
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current test case (it is re-drawn, not counted as a failure)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
