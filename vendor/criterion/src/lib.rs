//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace cannot reach a crates.io
//! registry, so this vendored crate implements the subset of the criterion
//! API used by `crates/bench`: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! fixed-duration batches; the reported figure is the median over samples
//! (nanoseconds per iteration), plus derived throughput when
//! [`BenchmarkGroup::throughput`] was set. Output goes to stdout as
//! `group/name  time: … ns/iter  thrpt: … MiB/s`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies. Re-exported from `std::hint`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const SAMPLE: Duration = Duration::from_millis(8);
const MIN_SAMPLES: usize = 11;
const MAX_MEASURE: Duration = Duration::from_millis(400);

/// How per-iteration work is expressed when reporting throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Measures `body`, storing the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(body());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let batch = ((SAMPLE.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

        let mut samples = Vec::new();
        let measure_start = Instant::now();
        while samples.len() < MIN_SAMPLES && measure_start.elapsed() < MAX_MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

/// The entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used to derive throughput figures.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { median_ns: 0.0 };
    f(&mut bencher);
    let ns = bencher.median_ns;
    let mut line = format!("{id:<48} time: {} /iter", fmt_ns(ns));
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / (ns * 1e-9);
        match t {
            Throughput::Bytes(b) => {
                line.push_str(&format!(
                    "  thrpt: {:.1} MiB/s",
                    per_sec(b) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { median_ns: 0.0 };
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
