//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to a
//! crates.io registry, so this vendored crate provides the (small) subset of
//! the `rand` 0.8 API the workspace actually uses, backed by a deterministic
//! xoshiro256++ generator:
//!
//! - [`Rng`][]: `gen`, `gen_range`, `gen_bool`, `gen_ratio`, `fill`
//! - [`SeedableRng`][]: `seed_from_u64`
//! - [`rngs::StdRng`]
//! - [`seq::SliceRandom`][]: `shuffle`, `choose`
//!
//! The numeric streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace only relies on seeded
//! determinism and uniformity, not on the exact byte stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        self.gen_range(0..denominator) < numerator
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_ratio_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(30, 31)).count();
        assert!(hits > 90_000, "hits {hits}");
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
