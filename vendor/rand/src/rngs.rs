//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Fast, passes BigCrush, and — unlike upstream `rand`'s ChaCha12-backed
/// `StdRng` — trivially implementable without external dependencies. The
/// name is kept so call sites match the real `rand` API.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
